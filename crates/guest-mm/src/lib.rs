//! A guest-kernel memory-manager simulator.
//!
//! This crate reimplements, over simulated state, the slice of the Linux
//! physical memory manager that the Squeezy paper patches and measures:
//!
//! * a per-frame `memmap` ([`memmap::MemMap`]);
//! * zones with buddy free lists ([`zone::Zone`]) — `ZONE_NORMAL`,
//!   `ZONE_MOVABLE`, and (created by the `squeezy` crate) one zone per
//!   Squeezy partition;
//! * the 128 MiB memory-block hot(un)plug state machine
//!   ([`blocks::BlockTable`]): hot-add → online → offline → hot-remove;
//! * the on-demand fault path that lazily backs process and page-cache
//!   memory, interleaving footprints across blocks exactly as §2.2 and
//!   Figure 3 describe;
//! * offline-with-migration: isolating a block's free pages, migrating
//!   its occupied movable pages elsewhere, and the zeroing that
//!   `init_on_alloc=1` hardening incurs along the way.
//!
//! The crate is purely *mechanical*: it mutates state and returns
//! operation counts ([`OfflineOutcome`], fault results). Devices and the
//! VMM translate counts into simulated time using
//! [`sim_core::CostModel`](../sim_core/cost/struct.CostModel.html), which
//! keeps mechanism and calibration apart.

pub mod blocks;
pub mod huge;
pub mod memmap;
pub mod page;
pub mod pagecache;
pub mod process;
pub mod zone;

use std::collections::HashMap;

use mem_types::{bytes_to_pages, BlockId, FrameRange, Gfn, PAGES_PER_BLOCK, PAGE_SIZE};

pub use blocks::{BlockState, BlockTable};
pub use huge::HugeFaultOutcome;
pub use memmap::MemMap;
pub use page::{PageDesc, PageState, HUGE_ORDER, MAX_ORDER, PAGES_PER_HUGE};
pub use pagecache::{CachedFile, FileId};
pub use process::{AllocPolicy, Pid, Process};
pub use zone::{Zone, ZoneKind};

/// Errors returned by memory-manager operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MmError {
    /// No zone in the allocation path could satisfy the request.
    OutOfMemory,
    /// The process id is unknown (or already exited).
    NoSuchProcess,
    /// The file id is unknown.
    NoSuchFile,
    /// The block is not in the state the operation requires.
    BadBlockState,
    /// The block holds unmovable (kernel) pages and cannot be offlined.
    BlockPinned,
    /// The block still holds used pages (instant offline requires empty).
    BlockNotEmpty,
    /// The page is not owned by the given process/file as claimed.
    NotOwner,
}

impl core::fmt::Display for MmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            MmError::OutOfMemory => "out of memory",
            MmError::NoSuchProcess => "no such process",
            MmError::NoSuchFile => "no such file",
            MmError::BadBlockState => "bad memory-block state",
            MmError::BlockPinned => "block pinned by unmovable pages",
            MmError::BlockNotEmpty => "block not empty",
            MmError::NotOwner => "page not owned as claimed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MmError {}

/// How the unplug path picks blocks to offline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateStrategy {
    /// virtio-mem default: unplug from the highest block address down.
    HighestFirst,
    /// Optimization ablation: prefer blocks with the fewest used pages
    /// (fewest migrations).
    EmptiestFirst,
}

/// Counts produced by offlining one block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OfflineOutcome {
    /// Pages examined while scanning/isolating the block.
    pub scanned: u64,
    /// Free pages isolated straight out of the buddy.
    pub isolated_free: u64,
    /// Occupied movable base pages migrated out of the block
    /// (including base pages produced by huge-page splits).
    pub migrated: u64,
    /// 2 MiB huge pages migrated whole to an order-9 target.
    pub migrated_huge: u64,
    /// Huge pages split into base pages for lack of an order-9 target.
    pub huge_splits: u64,
    /// Pages zeroed by `init_on_alloc` hardening along the way
    /// (isolation pseudo-allocations + migration-target allocations).
    pub zeroed: u64,
}

impl OfflineOutcome {
    /// Accumulates another outcome into this one.
    pub fn accumulate(&mut self, o: &OfflineOutcome) {
        self.scanned += o.scanned;
        self.isolated_free += o.isolated_free;
        self.migrated += o.migrated;
        self.migrated_huge += o.migrated_huge;
        self.huge_splits += o.huge_splits;
        self.zeroed += o.zeroed;
    }
}

/// A failed offline attempt, with the work wasted before the failure.
///
/// The wasted scans/migrations/zeroings still cost CPU time — the paper's
/// virtio-mem timeouts (§6.2.2) burn cycles exactly this way — so callers
/// need the partial counts to charge them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfflineFailure {
    /// Why the offline failed.
    pub error: MmError,
    /// Work performed (and rolled back) before failing.
    pub partial: OfflineOutcome,
}

/// Result of a file fault: how much was already cached vs. newly read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FileFaultOutcome {
    /// Pages newly allocated and read from storage.
    pub new_pages: u64,
    /// Pages that were already resident (page-cache hits).
    pub cached_pages: u64,
}

/// Cumulative mechanical statistics (monotonic counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct MmStats {
    /// Anonymous pages ever faulted in (4 KiB units; huge faults add 512).
    pub anon_faults: u64,
    /// File pages ever faulted in (cache misses).
    pub file_faults: u64,
    /// Pages migrated by offline operations.
    pub pages_migrated: u64,
    /// Pages zeroed on the offline path.
    pub pages_zeroed: u64,
    /// Blocks onlined.
    pub blocks_onlined: u64,
    /// Blocks offlined.
    pub blocks_offlined: u64,
    /// Offline attempts that failed (rolled back).
    pub offline_failures: u64,
    /// Huge pages successfully faulted as 2 MiB mappings.
    pub huge_faults: u64,
    /// Huge fault requests that fell back to base pages (fragmentation).
    pub huge_fallbacks: u64,
    /// Huge pages migrated whole by offline operations.
    pub huge_migrated: u64,
    /// Huge pages split by offline operations.
    pub huge_splits: u64,
    /// Pages swapped out to the host swap device.
    pub swap_outs: u64,
    /// Pages swapped back in (major faults).
    pub swap_ins: u64,
}

/// Static configuration of a guest's memory layout.
#[derive(Clone, Copy, Debug)]
pub struct GuestMmConfig {
    /// Boot (non-hotpluggable) memory, onlined to `ZONE_NORMAL`.
    pub boot_bytes: u64,
    /// Size of the hot-pluggable device region after boot memory.
    pub hotplug_bytes: u64,
    /// Unmovable kernel footprint carved out of boot memory at boot.
    pub kernel_bytes: u64,
    /// `CONFIG_INIT_ON_ALLOC_DEFAULT_ON`: zero pages on allocation (§2.2).
    pub init_on_alloc: bool,
}

impl Default for GuestMmConfig {
    fn default() -> Self {
        GuestMmConfig {
            boot_bytes: 2 * 1024 * 1024 * 1024,
            hotplug_bytes: 8 * 1024 * 1024 * 1024,
            kernel_bytes: 192 * 1024 * 1024,
            init_on_alloc: true,
        }
    }
}

/// Zone index of `ZONE_NORMAL` (always created at boot).
pub const ZONE_NORMAL: u8 = 0;
/// Zone index of `ZONE_MOVABLE` (always created at boot).
pub const ZONE_MOVABLE: u8 = 1;

/// The guest kernel memory manager.
pub struct GuestMm {
    config: GuestMmConfig,
    memmap: MemMap,
    zones: Vec<Zone>,
    blocks: BlockTable,
    procs: HashMap<u32, Process>,
    files: HashMap<u32, CachedFile>,
    kernel_pages: Vec<Gfn>,
    next_pid: u32,
    /// Policy used for page-cache allocations (Squeezy redirects this to
    /// the shared partition).
    file_policy: AllocPolicy,
    /// Squeezy's allocator fix: skip `init_on_alloc` zeroing for pages
    /// the hot-unplug path is about to pull out (§4.1).
    pub unplug_aware_zeroing_skip: bool,
    stats: MmStats,
}

impl GuestMm {
    /// Boots a guest memory manager with the given layout.
    ///
    /// Boot memory is onlined to `ZONE_NORMAL` immediately (minus the
    /// kernel's own unmovable footprint); the hotplug region starts
    /// absent and is populated by hot-add/online calls from the device
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not 128 MiB block-aligned or the kernel
    /// footprint exceeds boot memory.
    pub fn new(config: GuestMmConfig) -> Self {
        let boot_blocks = mem_types::bytes_to_blocks(config.boot_bytes);
        let hotplug_blocks = mem_types::bytes_to_blocks(config.hotplug_bytes);
        assert!(
            config.kernel_bytes <= config.boot_bytes,
            "kernel footprint exceeds boot memory"
        );
        let total_frames = (boot_blocks + hotplug_blocks) * PAGES_PER_BLOCK;
        let boot_frames = boot_blocks * PAGES_PER_BLOCK;

        let mut mm = GuestMm {
            config,
            memmap: MemMap::new(total_frames),
            zones: vec![
                Zone::new(
                    ZONE_NORMAL,
                    ZoneKind::Normal,
                    FrameRange::new(Gfn(0), boot_frames),
                ),
                Zone::new(
                    ZONE_MOVABLE,
                    ZoneKind::Movable,
                    FrameRange::new(Gfn(boot_frames), hotplug_blocks * PAGES_PER_BLOCK),
                ),
            ],
            blocks: BlockTable::new(boot_blocks + hotplug_blocks),
            procs: HashMap::new(),
            files: HashMap::new(),
            kernel_pages: Vec::new(),
            next_pid: 1,
            file_policy: AllocPolicy::MovableDefault,
            unplug_aware_zeroing_skip: false,
            stats: MmStats::default(),
        };

        // Online all boot blocks into ZONE_NORMAL.
        for b in 0..boot_blocks {
            let blk = BlockId(b);
            mm.pages_to_offline_state(blk);
            mm.blocks.set_state(blk, BlockState::AddedOffline);
            mm.online_block(blk, ZONE_NORMAL)
                .expect("boot block onlines");
        }
        mm.stats.blocks_onlined = 0; // Boot onlining is not a hotplug op.

        // Reserve the kernel's unmovable footprint.
        let kpages = bytes_to_pages(config.kernel_bytes);
        for _ in 0..kpages {
            let g = mm
                .alloc_from_zonelist(&[ZONE_NORMAL])
                .expect("boot memory fits the kernel");
            mm.claim(g, PageState::Kernel, 0, mm.kernel_pages.len() as u32);
            mm.kernel_pages.push(g);
        }
        mm
    }

    // --- Accessors -------------------------------------------------------

    /// Returns the boot configuration.
    pub fn config(&self) -> &GuestMmConfig {
        &self.config
    }

    /// Returns the cumulative statistics.
    pub fn stats(&self) -> &MmStats {
        &self.stats
    }

    /// Returns the zone with index `z`.
    ///
    /// # Panics
    ///
    /// Panics if the zone does not exist.
    pub fn zone(&self, z: u8) -> &Zone {
        &self.zones[z as usize]
    }

    /// Returns the number of zones.
    pub fn zone_count(&self) -> u8 {
        self.zones.len() as u8
    }

    /// Returns the block table.
    pub fn blocks(&self) -> &BlockTable {
        &self.blocks
    }

    /// Returns the memory map (tests and invariant checks).
    pub fn memmap(&self) -> &MemMap {
        &self.memmap
    }

    /// Returns the process with id `pid`, if alive.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid.0)
    }

    /// Returns a file's cached pages, if any.
    pub fn file(&self, f: FileId) -> Option<&CachedFile> {
        self.files.get(&f.0)
    }

    /// Returns the kernel's boot-time unmovable pages (the VMM populates
    /// their host backing during guest boot).
    pub fn kernel_pages(&self) -> &[Gfn] {
        &self.kernel_pages
    }

    /// Total bytes currently used (allocated) across all zones.
    pub fn used_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.used_pages()).sum::<u64>() * PAGE_SIZE
    }

    /// Total bytes currently free across all zones.
    pub fn free_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.free_pages).sum::<u64>() * PAGE_SIZE
    }

    /// Total bytes present (onlined) across all zones.
    pub fn present_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.managed_pages).sum::<u64>() * PAGE_SIZE
    }

    /// Sets the allocation policy for page-cache (file) pages.
    pub fn set_file_policy(&mut self, p: AllocPolicy) {
        self.file_policy = p;
    }

    /// Creates a new zone (used by the Squeezy layer for partitions).
    ///
    /// # Panics
    ///
    /// Panics if `span` is not block-aligned, exceeds the address space,
    /// or more than 254 zones exist.
    pub fn create_zone(&mut self, kind: ZoneKind, span: FrameRange) -> u8 {
        assert!(
            span.start.0.is_multiple_of(PAGES_PER_BLOCK),
            "span not block-aligned"
        );
        assert!(
            span.count.is_multiple_of(PAGES_PER_BLOCK),
            "span not block-sized"
        );
        assert!(span.end().0 <= self.memmap.len(), "span beyond memory");
        let id = u8::try_from(self.zones.len()).expect("zone table full");
        assert!(id < u8::MAX, "zone table full");
        self.zones.push(Zone::new(id, kind, span));
        id
    }

    /// Re-targets an *empty* zone onto a new span (the flex-partition
    /// layer recycles zone slots of destroyed partitions this way,
    /// keeping long create/destroy churn within the 254-zone table).
    ///
    /// # Panics
    ///
    /// Panics if the zone still manages pages, or if `span` is not
    /// block-aligned or exceeds the address space.
    pub fn retarget_zone(&mut self, z: u8, kind: ZoneKind, span: FrameRange) {
        assert!(
            span.start.0.is_multiple_of(PAGES_PER_BLOCK),
            "span not block-aligned"
        );
        assert!(
            span.count.is_multiple_of(PAGES_PER_BLOCK),
            "span not block-sized"
        );
        assert!(span.end().0 <= self.memmap.len(), "span beyond memory");
        let zone = &mut self.zones[z as usize];
        assert_eq!(zone.managed_pages, 0, "retargeting a non-empty zone");
        assert!(zone.buddy_is_empty(), "retargeting a zone with free pages");
        *zone = Zone::new(z, kind, span);
    }

    // --- Process lifecycle ------------------------------------------------

    /// Spawns a process with the given allocation policy.
    pub fn spawn_process(&mut self, policy: AllocPolicy) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid.0, Process::new(pid, policy));
        pid
    }

    /// Changes the allocation policy of a live process (the Squeezy
    /// syscall binds a process to its partition this way).
    pub fn set_policy(&mut self, pid: Pid, policy: AllocPolicy) -> Result<(), MmError> {
        self.procs
            .get_mut(&pid.0)
            .map(|p| p.policy = policy)
            .ok_or(MmError::NoSuchProcess)
    }

    /// Faults `n` anonymous pages into `pid`'s address space, returning
    /// the freshly allocated frames (for EPT population by the VMM).
    ///
    /// On `Err(OutOfMemory)` the pages allocated before exhaustion remain
    /// attached to the process — the OOM killer (or caller) decides what
    /// dies, mirroring §4.1.
    pub fn fault_anon(&mut self, pid: Pid, n: u64) -> Result<Vec<Gfn>, MmError> {
        let mut runs = Vec::new();
        self.fault_anon_runs(pid, n, &mut runs)?;
        let mut got = Vec::with_capacity(n as usize);
        for r in runs {
            got.extend(r.iter());
        }
        Ok(got)
    }

    /// Run-based variant of [`GuestMm::fault_anon`]: appends the faulted
    /// frames to `runs` as contiguous ranges instead of building
    /// a per-page list — the cold-start fast path (a fresh buddy serves
    /// order-0 faults as long sequential runs, so a 200 MiB first touch
    /// becomes ~50 range operations instead of ~50 000 page operations).
    ///
    /// Page states, process bookkeeping, allocation order and the final
    /// buddy state are identical to the per-page path (see
    /// [`Zone::alloc_run`]); only the bookkeeping granularity changes.
    pub fn fault_anon_runs(
        &mut self,
        pid: Pid,
        n: u64,
        runs: &mut Vec<FrameRange>,
    ) -> Result<(), MmError> {
        let policy = self.procs.get(&pid.0).ok_or(MmError::NoSuchProcess)?.policy;
        let zonelist = self.zonelist_for(policy);
        let mut remaining = n;
        while remaining > 0 {
            match self.alloc_run_from_zonelist(&zonelist, remaining) {
                Some((head, len)) => {
                    let proc = self.procs.get_mut(&pid.0).expect("checked above");
                    let first_slot = proc.pages.len() as u32;
                    proc.pages.extend((head.0..head.0 + len).map(Gfn));
                    self.claim_run(head, len, PageState::Anon, pid.0, first_slot);
                    runs.push(FrameRange::new(head, len));
                    remaining -= len;
                }
                None => {
                    self.stats.anon_faults += n - remaining;
                    return Err(MmError::OutOfMemory);
                }
            }
        }
        self.stats.anon_faults += n;
        Ok(())
    }

    /// Releases the `n` most recently faulted anonymous pages of `pid`
    /// (e.g. memhog freeing a chunk). Returns the number actually freed.
    pub fn free_anon(&mut self, pid: Pid, n: u64) -> Result<u64, MmError> {
        let mut freed = 0;
        for _ in 0..n {
            let Some(g) = self
                .procs
                .get_mut(&pid.0)
                .ok_or(MmError::NoSuchProcess)?
                .pages
                .pop()
            else {
                break;
            };
            self.release_used_page(g);
            freed += 1;
        }
        Ok(freed)
    }

    /// Releases one specific anonymous page of `pid` (a page-granular
    /// `munmap`/`MADV_DONTNEED`; fragmentation workloads punch holes with
    /// this). O(1) via the slot back-reference.
    pub fn free_anon_page(&mut self, pid: Pid, g: Gfn) -> Result<(), MmError> {
        let (state, owner, slot) = {
            let d = self.memmap.page(g);
            (d.state, d.a, d.b)
        };
        if state != PageState::Anon || owner != pid.0 {
            return Err(MmError::NotOwner);
        }
        let proc = self.procs.get_mut(&pid.0).ok_or(MmError::NoSuchProcess)?;
        debug_assert_eq!(proc.pages[slot as usize], g);
        proc.pages.swap_remove(slot as usize);
        if let Some(&moved) = proc.pages.get(slot as usize) {
            self.memmap.page_mut(moved).b = slot;
        }
        self.release_used_page(g);
        Ok(())
    }

    /// Swaps out the `n` *oldest* anonymous base pages of `pid` (LRU
    /// approximation: pages fault in append-order, so the front of the
    /// set is the coldest). The pages return to the buddy — their data
    /// now lives host-side in the swap device — and the owner's
    /// `swapped` count grows. Returns the evicted frames so the VMM can
    /// release (or repurpose) their host backing.
    pub fn swap_out_anon(&mut self, pid: Pid, n: u64) -> Result<Vec<Gfn>, MmError> {
        let proc = self.procs.get_mut(&pid.0).ok_or(MmError::NoSuchProcess)?;
        let take = (n.min(proc.pages.len() as u64)) as usize;
        let victims: Vec<Gfn> = proc.pages.drain(..take).collect();
        proc.swapped += victims.len() as u64;
        // Draining the front shifted every remaining slot: repair the
        // back-references.
        let remaining: Vec<Gfn> = proc.pages.clone();
        for (slot, g) in remaining.into_iter().enumerate() {
            self.memmap.page_mut(g).b = slot as u32;
        }
        for &g in &victims {
            self.release_used_page(g);
        }
        self.stats.swap_outs += victims.len() as u64;
        Ok(victims)
    }

    /// Swaps `n` of `pid`'s pages back in (major faults): fresh pages
    /// are allocated under the process's policy and its `swapped` count
    /// shrinks. Returns the frames faulted in, for EPT population.
    ///
    /// On `Err(OutOfMemory)` the pages faulted before exhaustion stay
    /// attached (and counted out of `swapped`), as with
    /// [`GuestMm::fault_anon`].
    pub fn swap_in_anon(&mut self, pid: Pid, n: u64) -> Result<Vec<Gfn>, MmError> {
        let (avail, before) = {
            let proc = self.procs.get(&pid.0).ok_or(MmError::NoSuchProcess)?;
            (proc.swapped.min(n), proc.pages.len() as u64)
        };
        let result = self.fault_anon(pid, avail);
        let proc = self.procs.get_mut(&pid.0).expect("checked above");
        let faulted = proc.pages.len() as u64 - before;
        proc.swapped -= faulted;
        self.stats.swap_ins += faulted;
        result
    }

    /// Drops `pid`'s whole anonymous resident set (base and huge) while
    /// keeping the process alive — the guest half of a soft-memory
    /// revocation (§7: discarding application-controlled soft state or a
    /// GC'd runtime's unused heap). Returns the number of 4 KiB pages
    /// freed.
    pub fn drop_anon(&mut self, pid: Pid) -> Result<u64, MmError> {
        let proc = self.procs.get_mut(&pid.0).ok_or(MmError::NoSuchProcess)?;
        let pages = std::mem::take(&mut proc.pages);
        let huge = std::mem::take(&mut proc.huge_pages);
        let n = pages.len() as u64 + huge.len() as u64 * PAGES_PER_HUGE;
        for g in pages {
            self.release_used_page(g);
        }
        for h in huge {
            self.release_huge(h);
        }
        Ok(n)
    }

    /// Terminates `pid`, freeing its whole anonymous resident set (base
    /// and huge). Returns the number of 4 KiB pages freed.
    pub fn exit_process(&mut self, pid: Pid) -> Result<u64, MmError> {
        let proc = self.procs.remove(&pid.0).ok_or(MmError::NoSuchProcess)?;
        let n = proc.pages.len() as u64 + proc.huge_pages.len() as u64 * PAGES_PER_HUGE;
        // Pages were claimed in allocation order, so the list is a
        // concatenation of contiguous runs: free whole runs at a time
        // (one block-counter update per run, maximal buddy chunks)
        // instead of page by page. Runs split at 128 MiB block
        // boundaries so each counter update stays within one block.
        let pages = &proc.pages;
        let mut i = 0usize;
        while i < pages.len() {
            let head = pages[i];
            let d = *self.memmap.page(head);
            debug_assert!(d.state.is_used(), "releasing non-used page {head:?}");
            let block_end = (head.block().0 + 1) * PAGES_PER_BLOCK;
            let mut j = i + 1;
            while j < pages.len() && pages[j].0 == pages[j - 1].0 + 1 && pages[j].0 < block_end {
                let nd = self.memmap.page(pages[j]);
                if nd.state != d.state || nd.zone != d.zone {
                    break;
                }
                j += 1;
            }
            let len = (j - i) as u32;
            let c = self.blocks.counters_mut(head.block());
            match d.state {
                PageState::Anon | PageState::File => c.used_movable -= len,
                PageState::Kernel => c.used_unmovable -= len,
                _ => unreachable!(),
            }
            c.free += len;
            self.zones[d.zone as usize].free_run(&mut self.memmap, head, len as u64);
            i = j;
        }
        for h in proc.huge_pages {
            self.release_huge(h);
        }
        Ok(n)
    }

    // --- Page cache -------------------------------------------------------

    /// Faults the first `want_pages` pages of `file` into the cache,
    /// allocating whatever is not yet resident.
    pub fn fault_file(
        &mut self,
        file: FileId,
        want_pages: u64,
    ) -> Result<FileFaultOutcome, MmError> {
        let mut runs = Vec::new();
        self.fault_file_runs(file, want_pages, &mut runs)
    }

    /// Run-based variant of [`GuestMm::fault_file`]: the newly read
    /// pages are also appended to `runs` as contiguous ranges, claimed
    /// with the same sequential-sweep fast path as
    /// [`GuestMm::fault_anon_runs`].
    pub fn fault_file_runs(
        &mut self,
        file: FileId,
        want_pages: u64,
        runs: &mut Vec<FrameRange>,
    ) -> Result<FileFaultOutcome, MmError> {
        let resident = self.files.entry(file.0).or_default().pages.len() as u64;
        let cached = resident.min(want_pages);
        let missing = want_pages.saturating_sub(resident);
        if missing == 0 {
            return Ok(FileFaultOutcome {
                new_pages: 0,
                cached_pages: cached,
            });
        }
        let zonelist = self.zonelist_for(self.file_policy);
        let mut remaining = missing;
        while remaining > 0 {
            let (head, len) = self
                .alloc_run_from_zonelist(&zonelist, remaining)
                .ok_or(MmError::OutOfMemory)?;
            let entry = self.files.get_mut(&file.0).expect("created above");
            let first_slot = entry.pages.len() as u32;
            entry.pages.extend((head.0..head.0 + len).map(Gfn));
            self.claim_run(head, len, PageState::File, file.0, first_slot);
            runs.push(FrameRange::new(head, len));
            remaining -= len;
        }
        self.stats.file_faults += missing;
        Ok(FileFaultOutcome {
            new_pages: missing,
            cached_pages: cached,
        })
    }

    /// Drops every cached page of `file`, returning how many were freed.
    pub fn drop_file(&mut self, file: FileId) -> Result<u64, MmError> {
        let f = self.files.remove(&file.0).ok_or(MmError::NoSuchFile)?;
        let n = f.pages.len() as u64;
        for g in f.pages {
            self.release_used_page(g);
        }
        Ok(n)
    }

    // --- Kernel (unmovable) allocations ------------------------------------

    /// Allocates `n` unmovable kernel pages from `ZONE_NORMAL` (pins
    /// their blocks against offlining).
    pub fn alloc_kernel(&mut self, n: u64) -> Result<(), MmError> {
        for _ in 0..n {
            let g = self
                .alloc_from_zonelist(&[ZONE_NORMAL])
                .ok_or(MmError::OutOfMemory)?;
            self.claim(g, PageState::Kernel, 0, self.kernel_pages.len() as u32);
            self.kernel_pages.push(g);
        }
        Ok(())
    }

    /// Allocates one unmovable page for a device driver (e.g. the balloon
    /// inflating). Tries movable zones first like `GFP_HIGHUSER` balloon
    /// allocations, but the page pins its block either way — one of the
    /// fragmentation pathologies of ballooning (§2.2).
    pub fn alloc_unmovable(&mut self) -> Result<Gfn, MmError> {
        let g = self
            .alloc_from_zonelist(&[ZONE_MOVABLE, ZONE_NORMAL])
            .ok_or(MmError::OutOfMemory)?;
        self.claim(g, PageState::Kernel, u32::MAX, 0);
        Ok(g)
    }

    /// Frees a page obtained from [`GuestMm::alloc_unmovable`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if the page is not an unmovable allocation.
    pub fn free_unmovable(&mut self, g: Gfn) {
        debug_assert_eq!(self.memmap.state(g), PageState::Kernel);
        self.release_used_page(g);
    }

    // --- Hot(un)plug ---------------------------------------------------------

    /// Hot-adds block `b`: creates its memmap coverage (Absent → offline).
    pub fn hot_add_block(&mut self, b: BlockId) -> Result<(), MmError> {
        if self.blocks.state(b) != BlockState::Absent {
            return Err(MmError::BadBlockState);
        }
        self.pages_to_offline_state(b);
        self.blocks.set_state(b, BlockState::AddedOffline);
        Ok(())
    }

    /// Hot-adds and immediately onlines block `b` into zone `z` — what a
    /// plug request does. One descriptor sweep instead of two: the
    /// intermediate Offline state of [`GuestMm::hot_add_block`] followed
    /// by [`GuestMm::online_block`] is unobservable (both happen inside
    /// one plug request), so the descriptors go straight from Absent to
    /// the buddy's free states.
    pub fn hot_add_online_block(&mut self, b: BlockId, z: u8) -> Result<(), MmError> {
        if self.blocks.state(b) != BlockState::Absent {
            return Err(MmError::BadBlockState);
        }
        self.online_pages_of(b, z)
    }

    /// Onlines block `b` into zone `z`: releases its pages to the buddy.
    pub fn online_block(&mut self, b: BlockId, z: u8) -> Result<(), MmError> {
        if self.blocks.state(b) != BlockState::AddedOffline {
            return Err(MmError::BadBlockState);
        }
        self.online_pages_of(b, z)
    }

    /// Shared tail of the online paths: hands `b`'s pages to zone `z`'s
    /// buddy and marks the block online.
    fn online_pages_of(&mut self, b: BlockId, z: u8) -> Result<(), MmError> {
        let zone = &self.zones[z as usize];
        if !zone.span.contains(b.first_frame()) || !zone.span.contains(Gfn(b.frames().end().0 - 1))
        {
            return Err(MmError::BadBlockState);
        }
        let chunk = 1u64 << MAX_ORDER;
        let start = b.first_frame().0;
        let zone = &mut self.zones[z as usize];
        for c in (start..start + PAGES_PER_BLOCK).step_by(chunk as usize) {
            zone.free_block(&mut self.memmap, Gfn(c), MAX_ORDER);
        }
        zone.managed_pages += PAGES_PER_BLOCK;
        self.blocks.mark_online(b, z);
        self.stats.blocks_onlined += 1;
        Ok(())
    }

    /// Offlines block `b`, migrating its occupied movable pages away.
    ///
    /// Fails with [`MmError::BlockPinned`] if unmovable pages live in the
    /// block, and with [`MmError::OutOfMemory`] (after rolling isolated
    /// pages back into the buddy) if migration targets run out; the
    /// failure carries the counts of the wasted work.
    pub fn offline_block(&mut self, b: BlockId) -> Result<OfflineOutcome, OfflineFailure> {
        let fail = |error| OfflineFailure {
            error,
            partial: OfflineOutcome::default(),
        };
        let BlockState::Online { zone } = self.blocks.state(b) else {
            return Err(fail(MmError::BadBlockState));
        };
        if self.blocks.counters(b).used_unmovable > 0 {
            return Err(fail(MmError::BlockPinned));
        }

        let mut out = OfflineOutcome {
            scanned: PAGES_PER_BLOCK,
            ..OfflineOutcome::default()
        };
        let zero_on_isolate = self.config.init_on_alloc && !self.unplug_aware_zeroing_skip;

        // Phase 1: isolate every free page of the block out of the buddy
        // so nothing new is allocated inside it.
        let frames = b.frames();
        let mut used: Vec<Gfn> = Vec::new();
        let mut used_huge: Vec<Gfn> = Vec::new();
        for g in frames.iter() {
            match self.memmap.state(g) {
                s if s.is_free() => {
                    self.zones[zone as usize].take_free_page(&mut self.memmap, g);
                    self.memmap.page_mut(g).state = PageState::Isolated;
                    let c = self.blocks.counters_mut(b);
                    c.free -= 1;
                    c.isolated += 1;
                    out.isolated_free += 1;
                    if zero_on_isolate {
                        out.zeroed += 1;
                    }
                }
                PageState::HugeHead => used_huge.push(g),
                // Tails are handled with their head (heads come first in
                // the ascending scan).
                PageState::HugeTail => {}
                s if s.is_movable() => used.push(g),
                PageState::Kernel => {
                    self.rollback_isolation(b, zone);
                    return Err(OfflineFailure {
                        error: MmError::BlockPinned,
                        partial: out,
                    });
                }
                _ => {
                    self.rollback_isolation(b, zone);
                    return Err(OfflineFailure {
                        error: MmError::BadBlockState,
                        partial: out,
                    });
                }
            }
        }

        // Phase 2a: evacuate huge pages — whole-unit migration when an
        // order-9 target exists, split into base pages otherwise (the
        // split pages join the base migration list below).
        for h in used_huge {
            match self.evacuate_huge(h) {
                huge::HugeEvacuation::Whole => {
                    out.migrated_huge += 1;
                    // The order-9 target allocation is zeroed by
                    // init_on_alloc before the copy, like base targets.
                    if zero_on_isolate {
                        out.zeroed += PAGES_PER_HUGE;
                    }
                }
                huge::HugeEvacuation::Split => {
                    out.huge_splits += 1;
                    used.extend((h.0..h.0 + PAGES_PER_HUGE).map(Gfn));
                }
            }
        }

        // Phase 2b: migrate the occupied movable base pages elsewhere.
        for g in used {
            match self.migrate_page(g, b) {
                Ok(()) => {
                    out.migrated += 1;
                    // Migration target allocation is zeroed by
                    // init_on_alloc before the copy overwrites it — the
                    // waste §2.2 calls out.
                    if zero_on_isolate {
                        out.zeroed += 1;
                    }
                }
                Err(e) => {
                    // Roll isolated pages back into the buddy; pages that
                    // already migrated stay migrated (partial progress,
                    // as in the kernel).
                    self.rollback_isolation(b, zone);
                    self.stats.offline_failures += 1;
                    self.stats.pages_migrated += out.migrated;
                    self.stats.pages_zeroed += out.zeroed;
                    return Err(OfflineFailure {
                        error: e,
                        partial: out,
                    });
                }
            }
        }

        // Phase 3: the block is fully isolated; take it offline.
        self.finish_offline(b, zone);
        self.stats.blocks_offlined += 1;
        self.stats.pages_migrated += out.migrated;
        self.stats.pages_zeroed += out.zeroed;
        Ok(out)
    }

    /// Squeezy's fast path: offline a block that is *known empty* (no
    /// used pages), isolating its free pages without any migration and —
    /// with the allocator fix — without zeroing.
    pub fn offline_block_instant(&mut self, b: BlockId) -> Result<OfflineOutcome, MmError> {
        let BlockState::Online { zone } = self.blocks.state(b) else {
            return Err(MmError::BadBlockState);
        };
        let c = self.blocks.counters(b);
        if c.used_movable > 0 || c.used_unmovable > 0 {
            return Err(MmError::BlockNotEmpty);
        }
        let mut out = OfflineOutcome::default();
        // The block is entirely free: isolate it chunk-at-a-time rather
        // than page-at-a-time (the per-page splits are pure overhead
        // when every page is being taken).
        self.zones[zone as usize].isolate_free_range(&mut self.memmap, b.frames());
        out.isolated_free = PAGES_PER_BLOCK;
        if self.config.init_on_alloc && !self.unplug_aware_zeroing_skip {
            out.zeroed = out.isolated_free;
            self.stats.pages_zeroed += out.zeroed;
        }
        {
            let c = self.blocks.counters_mut(b);
            c.isolated += c.free;
            c.free = 0;
        }
        self.finish_offline(b, zone);
        self.stats.blocks_offlined += 1;
        Ok(out)
    }

    /// Hot-removes block `b` (offline → absent), destroying its memmap.
    pub fn hot_remove_block(&mut self, b: BlockId) -> Result<(), MmError> {
        if self.blocks.state(b) != BlockState::AddedOffline {
            return Err(MmError::BadBlockState);
        }
        self.memmap.range_mut(b.frames()).fill(PageDesc::ABSENT);
        self.blocks.set_state(b, BlockState::Absent);
        self.blocks.reset_counters(b);
        Ok(())
    }

    /// Returns the head frames of every free buddy chunk of order at
    /// least `min_order` across all zones, in address order — the scan a
    /// free-page-reporting cycle performs.
    pub fn free_chunks(&self, min_order: u8) -> Vec<(Gfn, u8)> {
        let mut out: Vec<(Gfn, u8)> = self
            .zones
            .iter()
            .flat_map(|z| z.free_chunks(&self.memmap, min_order))
            .collect();
        out.sort_unstable_by_key(|&(g, _)| g.0);
        out
    }

    /// Returns up to `n` offline candidates in zone `z` under `strategy`.
    ///
    /// Blocks pinned by unmovable pages are skipped, mirroring the
    /// kernel's movability checks.
    pub fn offline_candidates(&self, z: u8, n: usize, strategy: CandidateStrategy) -> Vec<BlockId> {
        let mut cands: Vec<BlockId> = self
            .blocks
            .online_in_zone(z)
            .filter(|&b| self.blocks.counters(b).used_unmovable == 0)
            .collect();
        match strategy {
            CandidateStrategy::HighestFirst => cands.reverse(),
            CandidateStrategy::EmptiestFirst => {
                cands.sort_by_key(|&b| self.blocks.counters(b).used_movable)
            }
        }
        cands.truncate(n);
        cands
    }

    // --- Internals ----------------------------------------------------------

    /// Orders zones to try for a given policy.
    fn zonelist_for(&self, policy: AllocPolicy) -> Vec<u8> {
        match policy {
            AllocPolicy::MovableDefault => vec![ZONE_MOVABLE, ZONE_NORMAL],
            AllocPolicy::PinnedZone(z) => vec![z],
        }
    }

    /// Allocates one order-0 page from the first zone that can serve it.
    fn alloc_from_zonelist(&mut self, zonelist: &[u8]) -> Option<Gfn> {
        for &z in zonelist {
            if let Some(g) = self.zones[z as usize].alloc_block(&mut self.memmap, 0) {
                return Some(g);
            }
        }
        None
    }

    /// Allocates a contiguous run of up to `want` pages from the first
    /// zone that can serve it (see [`Zone::alloc_run`] for why this is
    /// order-identical to repeated [`GuestMm::alloc_from_zonelist`]).
    fn alloc_run_from_zonelist(&mut self, zonelist: &[u8], want: u64) -> Option<(Gfn, u64)> {
        for &z in zonelist {
            if let Some(run) = self.zones[z as usize].alloc_run(&mut self.memmap, want) {
                return Some(run);
            }
        }
        None
    }

    /// Claims a freshly allocated page (state `FreeTail`, already out of
    /// the buddy) for a user, updating block counters.
    fn claim(&mut self, g: Gfn, state: PageState, owner: u32, slot: u32) {
        debug_assert_eq!(self.memmap.state(g), PageState::FreeTail);
        {
            let d = self.memmap.page_mut(g);
            d.state = state;
            d.a = owner;
            d.b = slot;
        }
        let c = self.blocks.counters_mut(g.block());
        c.free -= 1;
        match state {
            PageState::Anon | PageState::File => c.used_movable += 1,
            PageState::Kernel => c.used_unmovable += 1,
            _ => unreachable!("claim called with non-used state"),
        }
    }

    /// Claims a freshly allocated contiguous run (all `FreeTail`, already
    /// out of the buddy) for one owner, slots numbered consecutively from
    /// `first_slot`. Equivalent to `len` [`GuestMm::claim`] calls, but
    /// the descriptor writes are one sequential sweep and the block
    /// counters are updated once — a buddy run (≤ 4 MiB, size-aligned)
    /// never straddles a 128 MiB block boundary.
    fn claim_run(&mut self, head: Gfn, len: u64, state: PageState, owner: u32, first_slot: u32) {
        debug_assert_eq!(head.block(), Gfn(head.0 + len - 1).block());
        // A buddy run comes from a single zone, so whole-descriptor
        // stores (no read-modify-write per field) are exact; `order` and
        // `flags` are meaningless outside the free lists.
        let zone = self.memmap.page(head).zone;
        for (i, d) in self
            .memmap
            .range_mut(FrameRange::new(head, len))
            .iter_mut()
            .enumerate()
        {
            debug_assert_eq!(d.state, PageState::FreeTail);
            debug_assert_eq!(d.zone, zone);
            *d = PageDesc {
                state,
                order: 0,
                zone,
                flags: 0,
                a: owner,
                b: first_slot + i as u32,
            };
        }
        let c = self.blocks.counters_mut(head.block());
        c.free -= len as u32;
        match state {
            PageState::Anon | PageState::File => c.used_movable += len as u32,
            PageState::Kernel => c.used_unmovable += len as u32,
            _ => unreachable!("claim called with non-used state"),
        }
    }

    /// Frees a used page back to its zone's buddy, updating counters.
    fn release_used_page(&mut self, g: Gfn) {
        let (state, zone) = {
            let d = self.memmap.page(g);
            (d.state, d.zone)
        };
        debug_assert!(state.is_used(), "releasing non-used page {g:?}");
        let c = self.blocks.counters_mut(g.block());
        match state {
            PageState::Anon | PageState::File => c.used_movable -= 1,
            PageState::Kernel => c.used_unmovable -= 1,
            _ => unreachable!(),
        }
        c.free += 1;
        self.zones[zone as usize].free_block(&mut self.memmap, g, 0);
    }

    /// Migrates used movable page `g` (inside offlining block `from`) to
    /// a target page outside it, patching the owner's bookkeeping.
    fn migrate_page(&mut self, g: Gfn, from: BlockId) -> Result<(), MmError> {
        let (state, zone, owner, slot) = {
            let d = self.memmap.page(g);
            (d.state, d.zone, d.a, d.b)
        };
        debug_assert!(state.is_movable());
        // Allocation order mirrors the kernel's migration-target
        // selection: same zone first, then the remaining fallbacks.
        let mut zonelist = vec![zone];
        if zone != ZONE_MOVABLE {
            zonelist.push(ZONE_MOVABLE);
        }
        if zone != ZONE_NORMAL {
            zonelist.push(ZONE_NORMAL);
        }
        let target = self
            .alloc_from_zonelist(&zonelist)
            .ok_or(MmError::OutOfMemory)?;
        debug_assert_ne!(target.block(), from, "isolation left frees behind");
        self.claim(target, state, owner, slot);
        // Patch the owner's bookkeeping.
        match state {
            PageState::Anon => {
                let p = self
                    .procs
                    .get_mut(&owner)
                    .expect("anon page owned by live process");
                p.pages[slot as usize] = target;
            }
            PageState::File => {
                let f = self
                    .files
                    .get_mut(&owner)
                    .expect("file page owned by cached file");
                f.pages[slot as usize] = target;
            }
            _ => unreachable!(),
        }
        // Source page joins the isolated set.
        self.memmap.page_mut(g).state = PageState::Isolated;
        let c = self.blocks.counters_mut(from);
        c.used_movable -= 1;
        c.isolated += 1;
        Ok(())
    }

    /// Returns all isolated pages of `b` to the buddy (offline failure).
    fn rollback_isolation(&mut self, b: BlockId, zone: u8) {
        for g in b.frames().iter() {
            if self.memmap.state(g) == PageState::Isolated {
                let c = self.blocks.counters_mut(b);
                c.isolated -= 1;
                c.free += 1;
                self.zones[zone as usize].free_block(&mut self.memmap, g, 0);
            }
        }
    }

    /// Completes an offline: all pages isolated → offline state.
    fn finish_offline(&mut self, b: BlockId, zone: u8) {
        debug_assert_eq!(self.blocks.counters(b).isolated as u64, PAGES_PER_BLOCK);
        for d in self.memmap.range_mut(b.frames()) {
            debug_assert_eq!(d.state, PageState::Isolated);
            d.state = PageState::Offline;
            d.zone = page::NO_ZONE;
        }
        self.zones[zone as usize].managed_pages -= PAGES_PER_BLOCK;
        self.blocks.set_state(b, BlockState::AddedOffline);
        self.blocks.reset_counters(b);
    }

    /// Initializes memmap coverage for `b` (pages → Offline state).
    fn pages_to_offline_state(&mut self, b: BlockId) {
        for d in self.memmap.range_mut(b.frames()) {
            d.state = PageState::Offline;
            d.zone = page::NO_ZONE;
        }
    }

    /// Debug validation of all zones' free lists, block counters and
    /// huge-page structure.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn assert_consistent(&self) {
        for z in &self.zones {
            z.assert_consistent(&self.memmap);
        }
        for bi in 0..self.blocks.len() {
            let b = BlockId(bi);
            let c = self.blocks.counters(b);
            if let BlockState::Online { .. } = self.blocks.state(b) {
                assert_eq!(c.total(), PAGES_PER_BLOCK, "block {bi} counters drifted");
                let free = self.memmap.count_in(b.frames(), |p| p.state.is_free());
                assert_eq!(free, c.free as u64, "block {bi} free count drifted");
            }
        }
        // Huge-page structure: heads 512-aligned, exactly 511 tails each,
        // no orphan tails.
        let mut tails_expected = 0u64;
        for i in 0..self.memmap.len() {
            let g = Gfn(i);
            match self.memmap.state(g) {
                PageState::HugeHead => {
                    assert_eq!(tails_expected, 0, "head {i:#x} inside another huge page");
                    assert_eq!(i % PAGES_PER_HUGE, 0, "huge head {i:#x} misaligned");
                    tails_expected = PAGES_PER_HUGE - 1;
                }
                PageState::HugeTail => {
                    assert!(tails_expected > 0, "orphan huge tail at {i:#x}");
                    tails_expected -= 1;
                }
                _ => {
                    assert_eq!(tails_expected, 0, "huge page truncated before {i:#x}");
                }
            }
        }
        assert_eq!(tails_expected, 0, "huge page truncated at end of memory");
        // Owner back-references of huge sets.
        for proc in self.procs.values() {
            for (slot, &h) in proc.huge_pages.iter().enumerate() {
                let d = self.memmap.page(h);
                assert_eq!(d.state, PageState::HugeHead, "huge set entry not a head");
                assert_eq!(d.a, proc.pid.0, "huge page owner drifted");
                assert_eq!(d.b as usize, slot, "huge page slot drifted");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_types::MIB;

    fn small_config() -> GuestMmConfig {
        GuestMmConfig {
            boot_bytes: 256 * MIB,
            hotplug_bytes: 512 * MIB,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        }
    }

    #[test]
    fn boot_reserves_kernel_and_onlines_normal() {
        let mm = GuestMm::new(small_config());
        assert_eq!(mm.present_bytes(), 256 * MIB);
        assert_eq!(mm.used_bytes(), 32 * MIB);
        assert_eq!(mm.zone(ZONE_NORMAL).managed_pages, 256 * MIB / PAGE_SIZE);
        assert_eq!(mm.zone(ZONE_MOVABLE).managed_pages, 0);
        mm.assert_consistent();
    }

    #[test]
    fn anon_fault_allocates_and_exit_frees() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        let used0 = mm.used_bytes();
        let got = mm.fault_anon(pid, 100).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(mm.used_bytes(), used0 + 100 * PAGE_SIZE);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 100);
        mm.assert_consistent();
        let freed = mm.exit_process(pid).unwrap();
        assert_eq!(freed, 100);
        assert_eq!(mm.used_bytes(), used0);
        mm.assert_consistent();
    }

    #[test]
    fn fault_falls_back_to_normal_when_movable_empty() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        // ZONE_MOVABLE has no present pages yet; allocation must come
        // from ZONE_NORMAL.
        let got = mm.fault_anon(pid, 1).unwrap();
        assert_eq!(mm.memmap().page(got[0]).zone, ZONE_NORMAL);
    }

    #[test]
    fn free_anon_lifo() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 10).unwrap();
        assert_eq!(mm.free_anon(pid, 4).unwrap(), 4);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 6);
        // Freeing more than resident frees what is there.
        assert_eq!(mm.free_anon(pid, 100).unwrap(), 6);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 0);
        mm.assert_consistent();
    }

    #[test]
    fn hotplug_lifecycle() {
        let mut mm = GuestMm::new(small_config());
        let first_hot = BlockId(2); // Boot covers blocks 0..2.
        assert_eq!(mm.blocks().state(first_hot), BlockState::Absent);

        mm.hot_add_block(first_hot).unwrap();
        assert_eq!(mm.blocks().state(first_hot), BlockState::AddedOffline);
        assert_eq!(mm.present_bytes(), 256 * MIB);

        mm.online_block(first_hot, ZONE_MOVABLE).unwrap();
        assert_eq!(
            mm.blocks().state(first_hot),
            BlockState::Online { zone: ZONE_MOVABLE }
        );
        assert_eq!(mm.present_bytes(), 384 * MIB);
        assert_eq!(mm.zone(ZONE_MOVABLE).free_pages, PAGES_PER_BLOCK);
        mm.assert_consistent();

        let out = mm.offline_block(first_hot).unwrap();
        assert_eq!(out.isolated_free, PAGES_PER_BLOCK);
        assert_eq!(out.migrated, 0);
        assert_eq!(
            out.zeroed, PAGES_PER_BLOCK,
            "init_on_alloc zeroes isolated frees"
        );
        assert_eq!(mm.present_bytes(), 256 * MIB);
        mm.assert_consistent();

        mm.hot_remove_block(first_hot).unwrap();
        assert_eq!(mm.blocks().state(first_hot), BlockState::Absent);
    }

    #[test]
    fn hotplug_bad_transitions_rejected() {
        let mut mm = GuestMm::new(small_config());
        let b = BlockId(2);
        assert_eq!(
            mm.offline_block(b).unwrap_err().error,
            MmError::BadBlockState
        );
        assert_eq!(mm.hot_remove_block(b), Err(MmError::BadBlockState));
        mm.hot_add_block(b).unwrap();
        assert_eq!(mm.hot_add_block(b), Err(MmError::BadBlockState));
        mm.online_block(b, ZONE_MOVABLE).unwrap();
        assert_eq!(
            mm.online_block(b, ZONE_MOVABLE),
            Err(MmError::BadBlockState)
        );
        // Onlining into a zone that does not span the block fails.
        let b2 = BlockId(3);
        mm.hot_add_block(b2).unwrap();
        assert_eq!(
            mm.online_block(b2, ZONE_NORMAL),
            Err(MmError::BadBlockState)
        );
    }

    #[test]
    fn offline_migrates_occupied_pages() {
        let mut mm = GuestMm::new(small_config());
        // Online two hotplug blocks, fill one partially from a process.
        let b1 = BlockId(2);
        let b2 = BlockId(3);
        mm.hot_add_block(b1).unwrap();
        mm.online_block(b1, ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 1000).unwrap();
        // Pages land in b1 (only movable block online).
        assert_eq!(mm.blocks().counters(b1).used_movable, 1000);
        mm.hot_add_block(b2).unwrap();
        mm.online_block(b2, ZONE_MOVABLE).unwrap();

        let out = mm.offline_block(b1).unwrap();
        assert_eq!(out.migrated, 1000);
        assert_eq!(out.isolated_free, PAGES_PER_BLOCK - 1000);
        // Zeroed = isolated frees + migration targets.
        assert_eq!(out.zeroed, PAGES_PER_BLOCK);
        // The process still owns 1000 pages, now in b2.
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 1000);
        assert_eq!(mm.blocks().counters(b2).used_movable, 1000);
        mm.assert_consistent();
        // Squeezy's zeroing skip suppresses the zeroing count.
        mm.unplug_aware_zeroing_skip = true;
        // b2 holds the 1000 pages; migration falls back to ZONE_NORMAL.
        let out2 = mm.offline_block(b2).unwrap();
        assert_eq!(out2.migrated, 1000);
        assert_eq!(out2.zeroed, 0);
        mm.assert_consistent();
    }

    #[test]
    fn offline_fails_when_no_target_memory() {
        let mut mm = GuestMm::new(GuestMmConfig {
            boot_bytes: 128 * MIB,
            hotplug_bytes: 256 * MIB,
            kernel_bytes: 16 * MIB,
            init_on_alloc: true,
        });
        let b = BlockId(1);
        mm.hot_add_block(b).unwrap();
        mm.online_block(b, ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        // Fill both the block and nearly all of ZONE_NORMAL so that
        // migration targets run out.
        let total_free = mm.free_bytes() / PAGE_SIZE;
        mm.fault_anon(pid, total_free - 100).unwrap();
        let before = mm.stats().offline_failures;
        let failure = mm.offline_block(b).unwrap_err();
        assert_eq!(failure.error, MmError::OutOfMemory);
        assert!(
            failure.partial.migrated > 0,
            "some pages migrated before exhaustion"
        );
        assert_eq!(mm.stats().offline_failures, before + 1);
        // Rollback: block is still online and consistent.
        assert!(matches!(mm.blocks().state(b), BlockState::Online { .. }));
        mm.assert_consistent();
    }

    #[test]
    fn instant_offline_requires_empty_block() {
        let mut mm = GuestMm::new(small_config());
        let b = BlockId(2);
        mm.hot_add_block(b).unwrap();
        mm.online_block(b, ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 1).unwrap();
        assert_eq!(mm.offline_block_instant(b), Err(MmError::BlockNotEmpty));
        mm.exit_process(pid).unwrap();
        mm.unplug_aware_zeroing_skip = true;
        let out = mm.offline_block_instant(b).unwrap();
        assert_eq!(out.migrated, 0);
        assert_eq!(out.zeroed, 0, "Squeezy skips zeroing");
        assert_eq!(out.isolated_free, PAGES_PER_BLOCK);
        mm.assert_consistent();
    }

    #[test]
    fn kernel_pages_pin_blocks() {
        let mut mm = GuestMm::new(small_config());
        // Kernel pages live in boot blocks; those blocks are pinned.
        let pinned = (0..2)
            .map(BlockId)
            .find(|&b| mm.blocks().counters(b).used_unmovable > 0)
            .expect("some boot block holds kernel pages");
        assert!(!mm.blocks().offlineable(pinned));
        assert_eq!(
            mm.offline_block(pinned).unwrap_err().error,
            MmError::BlockPinned
        );
        mm.alloc_kernel(10).unwrap();
        mm.assert_consistent();
    }

    #[test]
    fn file_faults_hit_cache_on_refault() {
        let mut mm = GuestMm::new(small_config());
        let f = FileId(7);
        let o1 = mm.fault_file(f, 100).unwrap();
        assert_eq!(o1.new_pages, 100);
        assert_eq!(o1.cached_pages, 0);
        let o2 = mm.fault_file(f, 100).unwrap();
        assert_eq!(o2.new_pages, 0);
        assert_eq!(o2.cached_pages, 100);
        let o3 = mm.fault_file(f, 150).unwrap();
        assert_eq!(o3.new_pages, 50);
        assert_eq!(o3.cached_pages, 100);
        assert_eq!(mm.file(f).unwrap().resident_pages(), 150);
        assert_eq!(mm.drop_file(f).unwrap(), 150);
        assert!(mm.file(f).is_none());
        mm.assert_consistent();
    }

    #[test]
    fn pinned_zone_policy_ooms_instead_of_spilling() {
        let mut mm = GuestMm::new(small_config());
        let b = BlockId(2);
        mm.hot_add_block(b).unwrap();
        mm.online_block(b, ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(ZONE_MOVABLE));
        // One block = 32768 pages; asking for more must OOM even though
        // ZONE_NORMAL has plenty free.
        let r = mm.fault_anon(pid, PAGES_PER_BLOCK + 1);
        assert_eq!(r, Err(MmError::OutOfMemory));
        assert!(mm.free_bytes() > 0, "normal zone still has memory");
        // The process keeps what it got; exit releases it.
        assert_eq!(mm.process(pid).unwrap().rss_pages(), PAGES_PER_BLOCK);
        mm.exit_process(pid).unwrap();
        mm.assert_consistent();
    }

    #[test]
    fn offline_candidates_strategies() {
        let mut mm = GuestMm::new(small_config());
        for i in 2..6 {
            mm.hot_add_block(BlockId(i)).unwrap();
            mm.online_block(BlockId(i), ZONE_MOVABLE).unwrap();
        }
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 10).unwrap();
        let highest = mm.offline_candidates(ZONE_MOVABLE, 2, CandidateStrategy::HighestFirst);
        assert_eq!(highest, vec![BlockId(5), BlockId(4)]);
        let emptiest = mm.offline_candidates(ZONE_MOVABLE, 4, CandidateStrategy::EmptiestFirst);
        // The block holding the 10 faulted pages sorts last.
        let last = *emptiest.last().unwrap();
        assert_eq!(mm.blocks().counters(last).used_movable, 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut mm = GuestMm::new(small_config());
        let b = BlockId(2);
        mm.hot_add_block(b).unwrap();
        mm.online_block(b, ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 50).unwrap();
        mm.offline_block(b).unwrap();
        let s = mm.stats();
        assert_eq!(s.anon_faults, 50);
        assert_eq!(s.pages_migrated, 50);
        assert_eq!(s.blocks_onlined, 1);
        assert_eq!(s.blocks_offlined, 1);
        assert!(s.pages_zeroed >= 50);
    }

    #[test]
    fn swap_out_evicts_oldest_pages_first() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        let got = mm.fault_anon(pid, 100).unwrap();
        let used0 = mm.used_bytes();
        let victims = mm.swap_out_anon(pid, 30).unwrap();
        assert_eq!(
            victims,
            got[..30].to_vec(),
            "oldest (first-faulted) go first"
        );
        let p = mm.process(pid).unwrap();
        assert_eq!(p.rss_pages(), 70);
        assert_eq!(p.swapped, 30);
        assert_eq!(mm.used_bytes(), used0 - 30 * PAGE_SIZE);
        mm.assert_consistent();
        // Slot back-references survived the drain (exercise free path).
        let some = mm.process(pid).unwrap().pages[5];
        mm.free_anon_page(pid, some).unwrap();
        mm.assert_consistent();
    }

    #[test]
    fn swap_in_restores_resident_set() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 100).unwrap();
        mm.swap_out_anon(pid, 60).unwrap();
        let back = mm.swap_in_anon(pid, 40).unwrap();
        assert_eq!(back.len(), 40);
        let p = mm.process(pid).unwrap();
        assert_eq!(p.rss_pages(), 80);
        assert_eq!(p.swapped, 20);
        // Swapping in more than is swapped caps at the swapped count.
        assert_eq!(mm.swap_in_anon(pid, 100).unwrap().len(), 20);
        assert_eq!(mm.process(pid).unwrap().swapped, 0);
        assert_eq!(mm.stats().swap_outs, 60);
        assert_eq!(mm.stats().swap_ins, 60);
        mm.assert_consistent();
    }

    #[test]
    fn swap_out_more_than_resident_caps() {
        let mut mm = GuestMm::new(small_config());
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, 10).unwrap();
        let victims = mm.swap_out_anon(pid, 100).unwrap();
        assert_eq!(victims.len(), 10);
        assert_eq!(mm.process(pid).unwrap().rss_pages(), 0);
        assert_eq!(mm.swap_out_anon(Pid(999), 1), Err(MmError::NoSuchProcess));
    }

    #[test]
    fn create_zone_and_pin_process_to_it() {
        let mut mm = GuestMm::new(small_config());
        let boot_frames = 2 * PAGES_PER_BLOCK;
        let z = mm.create_zone(
            ZoneKind::SqueezyPrivate { partition: 0 },
            FrameRange::new(Gfn(boot_frames), PAGES_PER_BLOCK),
        );
        assert_eq!(z, 2);
        assert_eq!(mm.zone(z).managed_pages, 0);
        // Online the block into the new zone and allocate from it.
        mm.hot_add_block(BlockId(2)).unwrap();
        mm.online_block(BlockId(2), z).unwrap();
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(z));
        let got = mm.fault_anon(pid, 5).unwrap();
        for g in got {
            assert_eq!(mm.memmap().page(g).zone, z);
        }
        mm.assert_consistent();
    }
}
