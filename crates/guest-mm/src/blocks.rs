//! The 128 MiB memory-block hot(un)plug state machine.
//!
//! Linux adds and removes memory in block granularity (§2.2): hot-add
//! creates the memmap, online hands the pages to the buddy, offline
//! retracts them (migrating occupied pages away) and hot-remove destroys
//! the metadata. [`BlockTable`] tracks each block's lifecycle state plus
//! per-block occupancy counters that the unplug paths consult when
//! choosing eviction candidates.

use mem_types::{BlockId, PAGES_PER_BLOCK};

/// Lifecycle state of one 128 MiB memory block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockState {
    /// Not hot-added: no memmap, invisible to the guest kernel.
    Absent,
    /// Hot-added (memmap exists) but offline: not usable by the buddy.
    AddedOffline,
    /// Onlined into zone `zone`: pages live in that zone's buddy.
    Online {
        /// The zone the block's pages were released to.
        zone: u8,
    },
}

/// Per-block occupancy counters, maintained incrementally by `GuestMm`.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockCounters {
    /// Pages in buddy free lists.
    pub free: u32,
    /// Movable used pages (anonymous + page cache).
    pub used_movable: u32,
    /// Unmovable used pages (kernel allocations) — these pin the block.
    pub used_unmovable: u32,
    /// Pages isolated by an in-progress offline operation.
    pub isolated: u32,
}

impl BlockCounters {
    /// Total accounted pages; equals `PAGES_PER_BLOCK` while online.
    pub fn total(&self) -> u64 {
        self.free as u64
            + self.used_movable as u64
            + self.used_unmovable as u64
            + self.isolated as u64
    }
}

/// State and counters for every block in the guest address space.
pub struct BlockTable {
    states: Vec<BlockState>,
    counters: Vec<BlockCounters>,
}

impl BlockTable {
    /// Creates a table of `n` absent blocks.
    pub fn new(n: u64) -> Self {
        BlockTable {
            states: vec![BlockState::Absent; n as usize],
            counters: vec![BlockCounters::default(); n as usize],
        }
    }

    /// Returns the number of blocks tracked.
    pub fn len(&self) -> u64 {
        self.states.len() as u64
    }

    /// Returns `true` if the table tracks zero blocks.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the state of `b`.
    pub fn state(&self, b: BlockId) -> BlockState {
        self.states[b.0 as usize]
    }

    /// Sets the state of `b`.
    pub fn set_state(&mut self, b: BlockId, s: BlockState) {
        self.states[b.0 as usize] = s;
    }

    /// Returns the counters of `b`.
    pub fn counters(&self, b: BlockId) -> &BlockCounters {
        &self.counters[b.0 as usize]
    }

    /// Returns the mutable counters of `b`.
    pub fn counters_mut(&mut self, b: BlockId) -> &mut BlockCounters {
        &mut self.counters[b.0 as usize]
    }

    /// Resets the counters of `b` to all-zero.
    pub fn reset_counters(&mut self, b: BlockId) {
        self.counters[b.0 as usize] = BlockCounters::default();
    }

    /// Marks `b` online in `zone` with all pages free.
    pub fn mark_online(&mut self, b: BlockId, zone: u8) {
        self.set_state(b, BlockState::Online { zone });
        self.counters[b.0 as usize] = BlockCounters {
            free: PAGES_PER_BLOCK as u32,
            ..BlockCounters::default()
        };
    }

    /// Iterates over blocks online in `zone`.
    pub fn online_in_zone(&self, zone: u8) -> impl Iterator<Item = BlockId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| match s {
                BlockState::Online { zone: z } if *z == zone => Some(BlockId(i as u64)),
                _ => None,
            })
    }

    /// Returns `true` if the block can be offlined at all (online and
    /// holding no unmovable pages).
    pub fn offlineable(&self, b: BlockId) -> bool {
        matches!(self.state(b), BlockState::Online { .. }) && self.counters(b).used_unmovable == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_all_absent() {
        let t = BlockTable::new(8);
        assert_eq!(t.len(), 8);
        for i in 0..8 {
            assert_eq!(t.state(BlockId(i)), BlockState::Absent);
        }
    }

    #[test]
    fn mark_online_sets_counters() {
        let mut t = BlockTable::new(4);
        t.mark_online(BlockId(2), 1);
        assert_eq!(t.state(BlockId(2)), BlockState::Online { zone: 1 });
        assert_eq!(t.counters(BlockId(2)).free as u64, PAGES_PER_BLOCK);
        assert_eq!(t.counters(BlockId(2)).total(), PAGES_PER_BLOCK);
    }

    #[test]
    fn online_in_zone_filters() {
        let mut t = BlockTable::new(5);
        t.mark_online(BlockId(0), 1);
        t.mark_online(BlockId(2), 1);
        t.mark_online(BlockId(3), 2);
        let zone1: Vec<_> = t.online_in_zone(1).collect();
        assert_eq!(zone1, vec![BlockId(0), BlockId(2)]);
        let zone2: Vec<_> = t.online_in_zone(2).collect();
        assert_eq!(zone2, vec![BlockId(3)]);
    }

    #[test]
    fn offlineable_requires_no_unmovable() {
        let mut t = BlockTable::new(2);
        assert!(!t.offlineable(BlockId(0)), "absent block not offlineable");
        t.mark_online(BlockId(0), 0);
        assert!(t.offlineable(BlockId(0)));
        t.counters_mut(BlockId(0)).used_unmovable = 1;
        assert!(!t.offlineable(BlockId(0)));
    }

    #[test]
    fn counter_updates() {
        let mut t = BlockTable::new(1);
        t.mark_online(BlockId(0), 0);
        let c = t.counters_mut(BlockId(0));
        c.free -= 10;
        c.used_movable += 10;
        assert_eq!(t.counters(BlockId(0)).total(), PAGES_PER_BLOCK);
        t.reset_counters(BlockId(0));
        assert_eq!(t.counters(BlockId(0)).total(), 0);
    }
}
