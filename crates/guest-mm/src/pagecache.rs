//! The guest page cache: file-backed pages shared across processes.
//!
//! In the N:1 model, container root file systems and runtime dependencies
//! are "instantiated once in memory and mapped multiple times" (§3). The
//! page cache holds those pages; Squeezy later redirects them into the
//! shared partition so private partitions stay instantly reclaimable.

use mem_types::Gfn;

/// Identifier of a cached file (rootfs layer, runtime library, model…).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u32);

/// Pages cached for one file.
///
/// `PageDesc.b` of each page stores its index in `pages` so migration can
/// patch the cache in O(1).
#[derive(Default)]
pub struct CachedFile {
    /// Resident pages of the file, in fault order.
    pub pages: Vec<Gfn>,
    /// How many processes currently map the file (informational).
    pub mappers: u32,
}

impl CachedFile {
    /// Returns the number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_file_counts() {
        let mut f = CachedFile::default();
        assert_eq!(f.resident_pages(), 0);
        f.pages.push(Gfn(1));
        f.pages.push(Gfn(2));
        assert_eq!(f.resident_pages(), 2);
    }
}
