//! Memory zones and the buddy allocator.
//!
//! Zones mirror the Linux physical memory zones the paper builds on:
//! `ZONE_NORMAL` for boot memory, `ZONE_MOVABLE` for hot-plugged memory
//! (§2.2), and — the paper's contribution — one extra zone per Squeezy
//! partition ("We implement Squeezy partitions as different zones (zone
//! structs), similar to ZONE_MOVABLE", §4.1).
//!
//! Each zone owns per-order intrusive free lists threaded through the
//! [`PageDesc`](crate::page::PageDesc) words, exactly like the kernel's
//! `free_area[]`, giving O(1) allocation, free and buddy merging.

use mem_types::{FrameRange, Gfn};

use crate::memmap::MemMap;
use crate::page::{PageDesc, PageState, MAX_ORDER, NIL};

/// What a zone is used for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ZoneKind {
    /// Boot memory serving kernel and fallback user allocations.
    Normal,
    /// Hot-plugged memory for movable allocations (`ZONE_MOVABLE`).
    Movable,
    /// A Squeezy private partition dedicated to one function instance.
    SqueezyPrivate {
        /// Partition id (assigned by the Squeezy layer).
        partition: u32,
    },
    /// The per-VM shared Squeezy partition backing file mappings.
    SqueezyShared,
}

/// A memory zone: a contiguous span of guest frames with buddy free lists.
pub struct Zone {
    /// Index of this zone in the `GuestMm` zone table.
    pub id: u8,
    /// Purpose of the zone.
    pub kind: ZoneKind,
    /// The guest-physical span the zone may ever cover.
    pub span: FrameRange,
    /// Head frame of the free list per order ([`NIL`] when empty).
    free_heads: [u32; MAX_ORDER as usize + 1],
    /// Number of free pages currently in the buddy lists.
    pub free_pages: u64,
    /// Number of pages currently onlined into this zone.
    pub managed_pages: u64,
}

impl Zone {
    /// Creates an empty zone covering `span`.
    pub fn new(id: u8, kind: ZoneKind, span: FrameRange) -> Self {
        Zone {
            id,
            kind,
            span,
            free_heads: [NIL; MAX_ORDER as usize + 1],
            free_pages: 0,
            managed_pages: 0,
        }
    }

    /// Returns the number of pages in use (`managed - free`).
    pub fn used_pages(&self) -> u64 {
        self.managed_pages - self.free_pages
    }

    /// Returns `true` if no free list holds any block.
    pub fn buddy_is_empty(&self) -> bool {
        self.free_heads.iter().all(|&h| h == NIL)
    }

    /// Unlinks free block `head` (of `order`) from its free list.
    fn unlink(&mut self, mm: &mut MemMap, head: Gfn, order: u8) {
        let (prev, next) = {
            let d = mm.page(head);
            debug_assert_eq!(d.state, PageState::FreeHead);
            debug_assert_eq!(d.order, order);
            debug_assert_eq!(d.zone, self.id);
            (d.a, d.b)
        };
        if prev == NIL {
            self.free_heads[order as usize] = next;
        } else {
            mm.page_mut(Gfn(prev as u64)).b = next;
        }
        if next != NIL {
            mm.page_mut(Gfn(next as u64)).a = prev;
        }
    }

    /// Links `head` as a free block of `order` at the front of its list.
    ///
    /// The head page's state becomes `FreeHead`; interior pages must
    /// already be `FreeTail` (callers arrange this).
    fn link(&mut self, mm: &mut MemMap, head: Gfn, order: u8) {
        let old = self.free_heads[order as usize];
        {
            let d = mm.page_mut(head);
            d.state = PageState::FreeHead;
            d.order = order;
            d.zone = self.id;
            d.a = NIL;
            d.b = old;
        }
        if old != NIL {
            mm.page_mut(Gfn(old as u64)).a = head.0 as u32;
        }
        self.free_heads[order as usize] = head.0 as u32;
    }

    /// Frees the 2^`order` pages starting at `head` into the buddy,
    /// merging with free buddies as far as possible.
    ///
    /// All pages in the range must currently be non-free (just-released
    /// allocations, isolated pages being rolled back, or pages being
    /// onlined); their states are overwritten.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `head` is not `order`-aligned.
    pub fn free_block(&mut self, mm: &mut MemMap, head: Gfn, order: u8) {
        debug_assert_eq!(head.0 & ((1 << order) - 1), 0, "misaligned free");
        debug_assert!(order <= MAX_ORDER);
        // Mark the whole range as free interior pages first (one
        // sequential descriptor fill); the final head is promoted at
        // the end. `order` is meaningful only on `FreeHead` pages and
        // `flags` is a spare byte, so a uniform fill is exact.
        #[cfg(debug_assertions)]
        for d in mm.range_mut(FrameRange::new(head, 1 << order)) {
            debug_assert!(!d.state.is_free(), "double free near {head:?}");
        }
        mm.range_mut(FrameRange::new(head, 1 << order))
            .fill(PageDesc {
                state: PageState::FreeTail,
                order: 0,
                zone: self.id,
                flags: 0,
                a: NIL,
                b: NIL,
            });
        self.free_pages += 1 << order;

        let mut head = head;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = Gfn(head.0 ^ (1u64 << order));
            if !self.span.contains(buddy) {
                break;
            }
            let bd = *mm.page(buddy);
            if bd.state != PageState::FreeHead || bd.order != order || bd.zone != self.id {
                break;
            }
            self.unlink(mm, buddy, order);
            mm.page_mut(buddy).state = PageState::FreeTail;
            head = Gfn(head.0.min(buddy.0));
            order += 1;
        }
        self.link(mm, head, order);
    }

    /// Frees the `len` contiguous pages starting at `head`, decomposed
    /// into maximal naturally-aligned power-of-two chunks in ascending
    /// address order.
    ///
    /// Exactly equivalent to `len` sequential order-0 [`Zone::free_block`]
    /// calls over `head..head+len`: eager buddy merging is confluent (the
    /// final free lists are the canonical maximal merge of the free page
    /// set), adjacent chunks of a maximal decomposition are never buddies,
    /// and each chunk completes — and is therefore linked — in the same
    /// ascending order the per-page path would link it, so even the
    /// intra-list ordering matches.
    pub fn free_run(&mut self, mm: &mut MemMap, head: Gfn, len: u64) {
        let mut g = head.0;
        let end = head.0 + len;
        while g < end {
            let align = if g == 0 {
                MAX_ORDER
            } else {
                (g.trailing_zeros() as u8).min(MAX_ORDER)
            };
            let fit = (63 - (end - g).leading_zeros()) as u8;
            let order = align.min(fit);
            self.free_block(mm, Gfn(g), order);
            g += 1 << order;
        }
    }

    /// Allocates a contiguous 2^`order` block, splitting larger blocks as
    /// needed. Returns the head frame, with every page in the block left
    /// in `FreeTail` state for the caller to claim, or `None` if the zone
    /// cannot satisfy the request.
    pub fn alloc_block(&mut self, mm: &mut MemMap, order: u8) -> Option<Gfn> {
        let mut have = None;
        for o in order..=MAX_ORDER {
            if self.free_heads[o as usize] != NIL {
                have = Some(o);
                break;
            }
        }
        let mut o = have?;
        let head = Gfn(self.free_heads[o as usize] as u64);
        self.unlink(mm, head, o);
        mm.page_mut(head).state = PageState::FreeTail;
        // Split down, freeing upper halves.
        while o > order {
            o -= 1;
            let upper = Gfn(head.0 + (1 << o));
            self.link(mm, upper, o);
        }
        self.free_pages -= 1 << order;
        Some(head)
    }

    /// Allocates a contiguous run of up to `want` pages with one buddy
    /// operation. Returns the head frame and run length, with every page
    /// left in `FreeTail` state for the caller to claim, or `None` if the
    /// zone is empty.
    ///
    /// Exactly equivalent to draining the run via repeated
    /// `alloc_block(mm, 0)` calls: order-0 allocation always consumes
    /// the smallest free block, and because splitting links the upper
    /// halves into the (empty) lower-order lists, it consumes that block
    /// *sequentially* — head, head+1, … — before touching any other
    /// block. Taking the whole block at once therefore yields the same
    /// pages in the same order and the same final free-list state, while
    /// skipping the per-page split/link churn. A block bigger than
    /// `want` is consumed one page at a time (the ordinary split path),
    /// so partial consumption also matches the sequential sequence.
    pub fn alloc_run(&mut self, mm: &mut MemMap, want: u64) -> Option<(Gfn, u64)> {
        debug_assert!(want > 0);
        let mut have = None;
        for o in 0..=MAX_ORDER {
            if self.free_heads[o as usize] != NIL {
                have = Some(o);
                break;
            }
        }
        let o = have?;
        if (1u64 << o) > want {
            return self.alloc_block(mm, 0).map(|g| (g, 1));
        }
        let head = Gfn(self.free_heads[o as usize] as u64);
        self.unlink(mm, head, o);
        mm.page_mut(head).state = PageState::FreeTail;
        self.free_pages -= 1 << o;
        Some((head, 1 << o))
    }

    /// Carves a specific free page `g` out of the buddy (the isolation
    /// primitive used by the offlining path). The page is left in
    /// `FreeTail` state for the caller to claim.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not currently free in this zone.
    pub fn take_free_page(&mut self, mm: &mut MemMap, g: Gfn) {
        assert!(mm.state(g).is_free(), "page {g:?} is not free");
        let (head, order) = mm.free_block_head(g);
        debug_assert_eq!(mm.page(head).zone, self.id, "page in wrong zone");
        self.unlink(mm, head, order);
        mm.page_mut(head).state = PageState::FreeTail;
        // Repeatedly halve, keeping the half containing `g` out of the
        // lists and freeing the other half.
        let mut head = head;
        let mut order = order;
        while order > 0 {
            order -= 1;
            let upper = Gfn(head.0 + (1 << order));
            if g.0 >= upper.0 {
                self.link(mm, head, order);
                head = upper;
            } else {
                self.link(mm, upper, order);
            }
        }
        debug_assert_eq!(head, g);
        self.free_pages -= 1;
    }

    /// Isolates an entirely-free page range, unlinking whole buddy
    /// chunks and marking every page [`PageState::Isolated`] in one
    /// descriptor sweep per chunk.
    ///
    /// `range` must be MAX_ORDER-aligned at both ends and contain only
    /// free pages of this zone; buddy chunks never straddle such a
    /// boundary, so every chunk touching the range lies wholly inside
    /// it. Equivalent to [`Zone::take_free_page`] on every page (the
    /// per-page path's intermediate splits only ever link and unlink
    /// chunks inside the range, all of which are gone at the end, so
    /// the surviving free lists match exactly).
    pub fn isolate_free_range(&mut self, mm: &mut MemMap, range: FrameRange) {
        debug_assert_eq!(range.start.0 & ((1 << MAX_ORDER) - 1), 0);
        debug_assert_eq!(range.count & ((1 << MAX_ORDER) - 1), 0);
        let mut g = range.start.0;
        let end = range.start.0 + range.count;
        while g < end {
            let d = *mm.page(Gfn(g));
            debug_assert_eq!(d.state, PageState::FreeHead, "free walk off a chunk head");
            debug_assert_eq!(d.zone, self.id, "page in wrong zone");
            let order = d.order;
            self.unlink(mm, Gfn(g), order);
            mm.range_mut(FrameRange::new(Gfn(g), 1 << order))
                .fill(PageDesc {
                    state: PageState::Isolated,
                    order: 0,
                    zone: self.id,
                    flags: 0,
                    a: NIL,
                    b: NIL,
                });
            g += 1 << order;
        }
        self.free_pages -= range.count;
    }

    /// Returns the number of free blocks currently on the `order` list
    /// (O(list length); used by tests and fragmentation metrics).
    pub fn free_list_len(&self, mm: &MemMap, order: u8) -> usize {
        let mut n = 0;
        let mut cur = self.free_heads[order as usize];
        while cur != NIL {
            n += 1;
            cur = mm.page(Gfn(cur as u64)).b;
        }
        n
    }

    /// Returns the head frames of every free chunk of order at least
    /// `min_order`, in address order — what a free-page-reporting scan
    /// walks.
    pub fn free_chunks(&self, mm: &MemMap, min_order: u8) -> Vec<(Gfn, u8)> {
        let mut out = Vec::new();
        for order in min_order..=MAX_ORDER {
            let mut cur = self.free_heads[order as usize];
            while cur != NIL {
                out.push((Gfn(cur as u64), order));
                cur = mm.page(Gfn(cur as u64)).b;
            }
        }
        out.sort_unstable_by_key(|&(g, _)| g.0);
        out
    }

    /// Debug validation: walks every free list and checks link integrity,
    /// state consistency and the free-page count.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn assert_consistent(&self, mm: &MemMap) {
        let mut counted = 0u64;
        for order in 0..=MAX_ORDER {
            let mut prev = NIL;
            let mut cur = self.free_heads[order as usize];
            while cur != NIL {
                let g = Gfn(cur as u64);
                let d = mm.page(g);
                assert_eq!(d.state, PageState::FreeHead, "list node not a head");
                assert_eq!(d.order, order, "order mismatch");
                assert_eq!(d.zone, self.id, "zone mismatch");
                assert_eq!(d.a, prev, "broken prev link");
                assert_eq!(g.0 & ((1 << order) - 1), 0, "misaligned block");
                for t in g.0 + 1..g.0 + (1 << order) {
                    assert_eq!(
                        mm.state(Gfn(t)),
                        PageState::FreeTail,
                        "interior page {t:#x} not FreeTail"
                    );
                }
                counted += 1 << order;
                prev = cur;
                cur = d.b;
            }
        }
        assert_eq!(counted, self.free_pages, "free_pages count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(span_pages: u64) -> (MemMap, Zone) {
        let mm = MemMap::new(span_pages);
        let zone = Zone::new(0, ZoneKind::Normal, FrameRange::new(Gfn(0), span_pages));
        (mm, zone)
    }

    /// Onlines `pages` frames into the zone as max-order chunks.
    fn fill(mm: &mut MemMap, zone: &mut Zone, pages: u64) {
        assert_eq!(pages % (1 << MAX_ORDER), 0);
        let chunk = 1u64 << MAX_ORDER;
        let mut g = 0;
        while g < pages {
            // Pages start Absent; free_block overwrites states.
            zone.free_block(mm, Gfn(g), MAX_ORDER);
            g += chunk;
        }
        zone.managed_pages += pages;
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let (mut mm, mut zone) = make(2048);
        fill(&mut mm, &mut zone, 2048);
        assert_eq!(zone.free_pages, 2048);
        zone.assert_consistent(&mm);

        let p = zone.alloc_block(&mut mm, 0).unwrap();
        assert_eq!(zone.free_pages, 2047);
        mm.page_mut(p).state = PageState::Anon;
        zone.assert_consistent(&mm);

        mm.page_mut(p).state = PageState::Isolated; // any non-free state
        zone.free_block(&mut mm, p, 0);
        assert_eq!(zone.free_pages, 2048);
        zone.assert_consistent(&mm);
        // Everything merged back to max order.
        assert_eq!(zone.free_list_len(&mm, MAX_ORDER), 2);
        for o in 0..MAX_ORDER {
            assert_eq!(zone.free_list_len(&mm, o), 0, "order {o} not merged");
        }
    }

    #[test]
    fn split_produces_correct_orders() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        let _p = zone.alloc_block(&mut mm, 0).unwrap();
        // One order-10 block split into 0..=9 remainders.
        for o in 0..MAX_ORDER {
            assert_eq!(zone.free_list_len(&mm, o), 1, "order {o}");
        }
        assert_eq!(zone.free_list_len(&mm, MAX_ORDER), 0);
        assert_eq!(zone.free_pages, 1023);
        zone.assert_consistent(&mm);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        for _ in 0..1024 {
            let g = zone.alloc_block(&mut mm, 0).unwrap();
            mm.page_mut(g).state = PageState::Anon;
        }
        assert_eq!(zone.free_pages, 0);
        assert!(zone.alloc_block(&mut mm, 0).is_none());
        assert!(zone.buddy_is_empty());
    }

    #[test]
    fn higher_order_alloc() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        let g = zone.alloc_block(&mut mm, 4).unwrap();
        assert_eq!(g.0 & 15, 0, "order-4 block is 16-page aligned");
        assert_eq!(zone.free_pages, 1024 - 16);
        zone.assert_consistent(&mm);
    }

    #[test]
    fn take_free_page_carves_target() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        let target = Gfn(777);
        zone.take_free_page(&mut mm, target);
        assert_eq!(zone.free_pages, 1023);
        assert_eq!(mm.state(target), PageState::FreeTail);
        mm.page_mut(target).state = PageState::Isolated;
        zone.assert_consistent(&mm);
        // Freeing it back restores full merge.
        zone.free_block(&mut mm, target, 0);
        assert_eq!(zone.free_pages, 1024);
        assert_eq!(zone.free_list_len(&mm, MAX_ORDER), 1);
        zone.assert_consistent(&mm);
    }

    #[test]
    fn take_every_page_one_by_one() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        for g in 0..1024 {
            zone.take_free_page(&mut mm, Gfn(g));
            mm.page_mut(Gfn(g)).state = PageState::Isolated;
        }
        assert_eq!(zone.free_pages, 0);
        assert!(zone.buddy_is_empty());
        zone.assert_consistent(&mm);
    }

    #[test]
    fn free_chunks_reflect_buddy_state() {
        let (mut mm, mut zone) = make(4096);
        fill(&mut mm, &mut zone, 4096);
        // Fully merged: four order-10 chunks, in address order.
        let chunks = zone.free_chunks(&mm, 9);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert!(chunks.iter().all(|&(_, o)| o == MAX_ORDER));
        // An order-0 allocation splits one chunk: the order-9 remainder
        // appears, the order-10 count drops.
        let g = zone.alloc_block(&mut mm, 0).unwrap();
        mm.page_mut(g).state = PageState::Anon;
        let chunks = zone.free_chunks(&mm, 9);
        assert_eq!(chunks.iter().filter(|&&(_, o)| o == MAX_ORDER).count(), 3);
        assert_eq!(chunks.iter().filter(|&&(_, o)| o == 9).count(), 1);
        // Below the threshold nothing of order < 9 is reported.
        assert!(chunks.iter().all(|&(_, o)| o >= 9));
        // Freeing restores the fully merged view.
        zone.free_block(&mut mm, g, 0);
        assert_eq!(zone.free_chunks(&mm, 9).len(), 4);
    }

    #[test]
    fn merge_does_not_cross_span() {
        // Zone covering only the upper half of a would-be order-10 pair:
        // merging must stop at the span edge.
        let mm = MemMap::new(2048);
        let mut mm = mm;
        let mut zone = Zone::new(0, ZoneKind::Normal, FrameRange::new(Gfn(1024), 1024));
        zone.free_block(&mut mm, Gfn(1024), MAX_ORDER);
        zone.managed_pages += 1024;
        zone.assert_consistent(&mm);
        assert_eq!(zone.free_list_len(&mm, MAX_ORDER), 1);
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn take_used_page_panics() {
        let (mut mm, mut zone) = make(1024);
        fill(&mut mm, &mut zone, 1024);
        let g = zone.alloc_block(&mut mm, 0).unwrap();
        mm.page_mut(g).state = PageState::Anon;
        zone.take_free_page(&mut mm, g);
    }

    #[test]
    fn alloc_run_matches_sequential_order_zero_allocs() {
        // Drive two identical zones through mixed run/free traffic; the
        // run path must produce the same page sequence and the same
        // buddy state as repeated order-0 allocation.
        let (mut mm_a, mut za) = make(4096);
        let (mut mm_b, mut zb) = make(4096);
        fill(&mut mm_a, &mut za, 4096);
        fill(&mut mm_b, &mut zb, 4096);
        let mut x = 0xDEAD_BEEFu64;
        let mut held: Vec<Gfn> = Vec::new();
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(4) && !held.is_empty() {
                // Free a pseudo-random page from both zones alike.
                let idx = (x as usize / 5) % held.len();
                let g = held.swap_remove(idx);
                za.free_block(&mut mm_a, g, 0);
                zb.free_block(&mut mm_b, g, 0);
                continue;
            }
            // Allocate a run of 1..=100 pages via both paths.
            let mut want = 1 + (x / 3) % 100;
            let mut run_pages = Vec::new();
            while want > 0 {
                let Some((head, len)) = za.alloc_run(&mut mm_a, want) else {
                    break;
                };
                for g in head.0..head.0 + len {
                    mm_a.page_mut(Gfn(g)).state = PageState::Anon;
                    run_pages.push(Gfn(g));
                }
                want -= len;
            }
            let seq_pages: Vec<Gfn> = (0..run_pages.len())
                .map(|_| {
                    let g = zb.alloc_block(&mut mm_b, 0).unwrap();
                    mm_b.page_mut(g).state = PageState::Anon;
                    g
                })
                .collect();
            assert_eq!(run_pages, seq_pages, "allocation sequence must match");
            held.extend(run_pages);
        }
        assert_eq!(za.free_pages, zb.free_pages);
        za.assert_consistent(&mm_a);
        zb.assert_consistent(&mm_b);
        // Identical free-list structure, not just counts.
        for o in 0..=MAX_ORDER {
            assert_eq!(
                za.free_list_len(&mm_a, o),
                zb.free_list_len(&mm_b, o),
                "order {o} free list diverged"
            );
        }
        assert_eq!(za.free_chunks(&mm_a, 0), zb.free_chunks(&mm_b, 0));
    }

    #[test]
    fn free_run_matches_sequential_order_zero_frees() {
        // Drive two identical zones: one frees whole runs via
        // `free_run`, the other frees the same pages one at a time.
        // Buddy merging must land in the same canonical state either
        // way, down to intra-list ordering.
        let (mut mm_a, mut za) = make(4096);
        let (mut mm_b, mut zb) = make(4096);
        fill(&mut mm_a, &mut za, 4096);
        fill(&mut mm_b, &mut zb, 4096);
        let mut x = 0xC0FF_EE00u64;
        let mut held: Vec<(Gfn, u64)> = Vec::new();
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(3) && !held.is_empty() {
                let idx = (x as usize / 5) % held.len();
                let (head, len) = held.swap_remove(idx);
                za.free_run(&mut mm_a, head, len);
                for g in head.0..head.0 + len {
                    zb.free_block(&mut mm_b, Gfn(g), 0);
                }
                continue;
            }
            // Allocate the same runs from both zones to stay in sync.
            let want = 1 + (x / 3) % 200;
            if let Some((head, len)) = za.alloc_run(&mut mm_a, want) {
                let (hb, lb) = zb.alloc_run(&mut mm_b, want).unwrap();
                assert_eq!((head, len), (hb, lb));
                for g in head.0..head.0 + len {
                    mm_a.page_mut(Gfn(g)).state = PageState::Anon;
                    mm_b.page_mut(Gfn(g)).state = PageState::Anon;
                }
                held.push((head, len));
            }
        }
        // Drain everything still held so the whole zone is exercised.
        for (head, len) in held {
            za.free_run(&mut mm_a, head, len);
            for g in head.0..head.0 + len {
                zb.free_block(&mut mm_b, Gfn(g), 0);
            }
        }
        assert_eq!(za.free_pages, zb.free_pages);
        za.assert_consistent(&mm_a);
        zb.assert_consistent(&mm_b);
        for o in 0..=MAX_ORDER {
            assert_eq!(
                za.free_chunks(&mm_a, o),
                zb.free_chunks(&mm_b, o),
                "order {o} free list diverged"
            );
        }
    }

    #[test]
    fn isolate_free_range_matches_per_page_takes() {
        // Fragment two identical zones the same way, then isolate the
        // same fully-free MAX_ORDER-aligned range: bulk chunk unlinking
        // must leave the same free lists as per-page carving.
        let (mut mm_a, mut za) = make(8192);
        let (mut mm_b, mut zb) = make(8192);
        fill(&mut mm_a, &mut za, 8192);
        fill(&mut mm_b, &mut zb, 8192);
        let mut x = 0x5EED_5EEDu64;
        // Allocate scattered pages outside [2048, 4096) so the target
        // range stays free but the surrounding buddy state is ragged.
        for _ in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (ga, gb) = (
                za.alloc_block(&mut mm_a, 0).unwrap(),
                zb.alloc_block(&mut mm_b, 0).unwrap(),
            );
            assert_eq!(ga, gb);
            mm_a.page_mut(ga).state = PageState::Anon;
            mm_b.page_mut(gb).state = PageState::Anon;
            if (2048..4096).contains(&ga.0) {
                // Give the page back if it landed in the target range.
                za.free_block(&mut mm_a, ga, 0);
                zb.free_block(&mut mm_b, gb, 0);
            } else if x.is_multiple_of(5) {
                za.free_block(&mut mm_a, ga, 0);
                zb.free_block(&mut mm_b, gb, 0);
            }
        }
        let range = FrameRange::new(Gfn(2048), 2048);
        za.isolate_free_range(&mut mm_a, range);
        for g in range.iter() {
            zb.take_free_page(&mut mm_b, g);
            mm_b.page_mut(g).state = PageState::Isolated;
        }
        assert_eq!(za.free_pages, zb.free_pages);
        for g in range.iter() {
            assert_eq!(mm_a.state(g), PageState::Isolated);
        }
        za.assert_consistent(&mm_a);
        zb.assert_consistent(&mm_b);
        for o in 0..=MAX_ORDER {
            assert_eq!(
                za.free_chunks(&mm_a, o),
                zb.free_chunks(&mm_b, o),
                "order {o} free list diverged"
            );
        }
    }

    #[test]
    fn interleaved_alloc_free_stays_consistent() {
        let (mut mm, mut zone) = make(4096);
        fill(&mut mm, &mut zone, 4096);
        let mut held = Vec::new();
        // Deterministic pseudo-random interleaving.
        let mut x = 0x12345678u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !x.is_multiple_of(3) || held.is_empty() {
                if let Some(g) = zone.alloc_block(&mut mm, 0) {
                    mm.page_mut(g).state = PageState::Anon;
                    held.push(g);
                }
            } else {
                let idx = (x as usize / 7) % held.len();
                let g = held.swap_remove(idx);
                zone.free_block(&mut mm, g, 0);
            }
        }
        zone.assert_consistent(&mm);
        for g in held {
            zone.free_block(&mut mm, g, 0);
        }
        zone.assert_consistent(&mm);
        assert_eq!(zone.free_pages, 4096);
        assert_eq!(zone.free_list_len(&mm, MAX_ORDER), 4);
    }
}
