//! Criterion bench covering the FaaS-runtime figures: the motivation
//! timeline (Fig. 1), churn analysis (Fig. 2), reclamation throughput
//! (Fig. 8) and the co-location interference series (Fig. 9).

use criterion::{criterion_group, criterion_main, Criterion};
use squeezy_bench::{fig1, fig2, fig8, fig9};

fn bench_faas(c: &mut Criterion) {
    println!("{}", fig1::render(&fig1::run(&fig1::Fig1Config::quick())));
    println!("{}", fig2::render(&fig2::run(&fig2::Fig2Config::quick())));
    println!("{}", fig8::render(&fig8::run(&fig8::Fig8Config::quick())));
    let cfg9 = fig9::Fig9Config::quick();
    println!("{}", fig9::render(&fig9::run(&cfg9), &cfg9));

    let mut group = c.benchmark_group("faas_runtime");
    group.sample_size(10);
    group.bench_function("fig2_churn", |b| {
        b.iter(|| fig2::run(&fig2::Fig2Config::quick()))
    });
    group.bench_function("fig1_timeline", |b| {
        b.iter(|| fig1::run(&fig1::Fig1Config::quick()))
    });
    group.finish();
}

criterion_group!(benches, bench_faas);
criterion_main!(benches);
