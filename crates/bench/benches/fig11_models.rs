//! Criterion bench for Figure 11: 1:1 vs N:1 cold starts and footprints.

use criterion::{criterion_group, criterion_main, Criterion};
use faas::{microvm_cold_start, n_to_one_cold_start};
use sim_core::CostModel;
use squeezy_bench::fig11::{render, run};
use workloads::FunctionKind;

fn bench_models(c: &mut Criterion) {
    println!("{}", render(&run()));
    let cost = CostModel::default();
    let mut group = c.benchmark_group("fig11_cold_start");
    group.sample_size(10);
    group.bench_function("1to1_html", |b| {
        b.iter(|| microvm_cold_start(FunctionKind::Html, &cost).unwrap())
    });
    group.bench_function("Nto1_html", |b| {
        b.iter(|| n_to_one_cold_start(FunctionKind::Html, &cost).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
