//! Micro-operation benches for the substrate data structures: buddy
//! allocation, block offline with migration, partition plug/unplug.
//! These measure simulator throughput (how fast the reproduction runs),
//! complementing the figure benches that report simulated time.

use criterion::{criterion_group, criterion_main, Criterion};
use guest_mm::{AllocPolicy, GuestMm, GuestMmConfig};
use mem_types::{BlockId, MIB};
use sim_core::CostModel;
use squeezy_bench::setup::{FarmKind, MemhogFarm};

fn mm() -> GuestMm {
    GuestMm::new(GuestMmConfig {
        boot_bytes: 512 * MIB,
        hotplug_bytes: 512 * MIB,
        kernel_bytes: 64 * MIB,
        init_on_alloc: true,
    })
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_ops");
    group.sample_size(20);

    group.bench_function("buddy_fault_free_4k_pages", |b| {
        b.iter_batched(
            || {
                let mut m = mm();
                let pid = m.spawn_process(AllocPolicy::MovableDefault);
                (m, pid)
            },
            |(mut m, pid)| {
                m.fault_anon(pid, 4096).unwrap();
                m.free_anon(pid, 4096).unwrap();
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("offline_block_with_migration", |b| {
        b.iter_batched(
            || {
                let mut m = mm();
                m.hot_add_block(BlockId(4)).unwrap();
                m.online_block(BlockId(4), guest_mm::ZONE_MOVABLE).unwrap();
                let pid = m.spawn_process(AllocPolicy::MovableDefault);
                m.fault_anon(pid, 8192).unwrap();
                m
            },
            |mut m| m.offline_block(BlockId(4)).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("squeezy_partition_cycle", |b| {
        let cost = CostModel::default();
        b.iter_batched(
            || MemhogFarm::build(FarmKind::Squeezy, 2, 128 * MIB, 0, &cost),
            |mut farm| {
                farm.kill(0);
                let sq = farm.squeezy.as_mut().unwrap();
                sq.unplug_partition(&mut farm.vm, &mut farm.host, &cost)
                    .unwrap();
                sq.plug_partition(&mut farm.vm, &cost).unwrap();
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
