//! Criterion bench for Figure 10: end-to-end under restricted memory.

use criterion::{criterion_group, criterion_main, Criterion};
use squeezy_bench::fig10::{render, run, Fig10Config};

fn bench_limited(c: &mut Criterion) {
    println!("{}", render(&run(&Fig10Config::quick())));
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("quick_all_backends", |b| {
        b.iter(|| run(&Fig10Config::quick()))
    });
    group.finish();
}

criterion_group!(benches, bench_limited);
criterion_main!(benches);
