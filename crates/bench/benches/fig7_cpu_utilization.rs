//! Criterion bench for Figure 7: reclaim kernel-thread CPU utilization.

use criterion::{criterion_group, criterion_main, Criterion};
use squeezy_bench::fig7::{render, run, Fig7Config};

fn bench_cpu_util(c: &mut Criterion) {
    println!("{}", render(&run(&Fig7Config::quick())));
    let mut group = c.benchmark_group("fig7_series");
    group.sample_size(10);
    group.bench_function("quick_series", |b| b.iter(|| run(&Fig7Config::quick())));
    group.finish();
}

criterion_group!(benches, bench_cpu_util);
criterion_main!(benches);
