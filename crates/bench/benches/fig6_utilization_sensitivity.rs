//! Criterion bench for Figure 6: unplug latency vs memory utilization.

use criterion::{criterion_group, criterion_main, Criterion};
use squeezy_bench::fig6::{render, run, Fig6Config};

fn bench_sensitivity(c: &mut Criterion) {
    println!("{}", render(&run(&Fig6Config::quick())));
    let mut group = c.benchmark_group("fig6_sweep");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| b.iter(|| run(&Fig6Config::quick())));
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
