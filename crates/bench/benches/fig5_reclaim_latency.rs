//! Criterion bench for Figure 5: per-method reclaim of one killed
//! memhog's memory, plus the paper-style table printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mem_types::MIB;
use sim_core::CostModel;
use squeezy_bench::fig5::{render, run, Fig5Config};
use squeezy_bench::setup::{FarmKind, MemhogFarm};

fn bench_reclaim(c: &mut Criterion) {
    println!("{}", render(&run(&Fig5Config::quick())));

    let cost = CostModel::default();
    let mut group = c.benchmark_group("fig5_reclaim_256MiB");
    group.sample_size(10);
    for (name, kind) in [
        ("virtio-mem", FarmKind::Vanilla),
        ("squeezy", FarmKind::Squeezy),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut farm = MemhogFarm::build(kind, 4, 256 * MIB, 1, &cost);
                    farm.kill(0);
                    farm
                },
                |mut farm| match kind {
                    FarmKind::Vanilla => farm
                        .vm
                        .unplug(&mut farm.host, 256 * MIB, None, &cost)
                        .unwrap()
                        .latency(),
                    FarmKind::Squeezy => {
                        let sq = farm.squeezy.as_mut().unwrap();
                        sq.unplug_partition(&mut farm.vm, &mut farm.host, &cost)
                            .unwrap()
                            .1
                            .latency()
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reclaim);
criterion_main!(benches);
