//! Criterion benches for the §7 extension ablations: THP, soft memory,
//! temporal segregation and hybrid scaling.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_thp(c: &mut Criterion) {
    use squeezy_bench::thp::{render, run, ThpConfig};
    println!("{}", render(&run(&ThpConfig::quick())));
    let mut group = c.benchmark_group("ablation_thp");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| run(&ThpConfig::quick())));
    group.finish();
}

fn bench_soft(c: &mut Criterion) {
    use squeezy_bench::soft::{render, run};
    println!("{}", render(&run()));
    let mut group = c.benchmark_group("ablation_soft_memory");
    group.sample_size(10);
    group.bench_function("grid", |b| b.iter(run));
    group.finish();
}

fn bench_temporal(c: &mut Criterion) {
    use squeezy_bench::temporal::{render, run};
    println!("{}", render(&run()));
    let mut group = c.benchmark_group("ablation_temporal");
    group.sample_size(10);
    group.bench_function("grid", |b| b.iter(run));
    group.finish();
}

fn bench_hybrid(c: &mut Criterion) {
    use squeezy_bench::hybrid::{render, run, HybridConfig};
    let cfg = HybridConfig::quick();
    println!("{}", render(&cfg, &run(&cfg)));
    let mut group = c.benchmark_group("ablation_hybrid_scaling");
    group.sample_size(10);
    group.bench_function("quick_sweep", |b| b.iter(|| run(&cfg)));
    group.finish();
}

fn bench_fpr(c: &mut Criterion) {
    use squeezy_bench::fpr::{render, run, FprConfig};
    println!("{}", render(&run(&FprConfig::quick())));
    let mut group = c.benchmark_group("ablation_free_page_reporting");
    group.sample_size(10);
    group.bench_function("quick", |b| b.iter(|| run(&FprConfig::quick())));
    group.finish();
}

criterion_group!(
    benches,
    bench_thp,
    bench_soft,
    bench_temporal,
    bench_hybrid,
    bench_fpr
);
criterion_main!(benches);
