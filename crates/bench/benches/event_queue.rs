//! Event-queue throughput: the timer-wheel [`EventQueue`] against the
//! reference [`BinaryHeapQueue`] it replaced, at three pending-set
//! sizes spanning the quick (1e3), cluster (1e5) and full perf-scenario
//! (1e7) regimes.
//!
//! Each benchmark holds the queue at a constant depth and measures one
//! steady-state churn step — pop the earliest event, push a successor a
//! pseudo-random distance into the future — which is exactly the
//! pattern the simulators drive: the wheel's O(1) amortized step versus
//! the heap's O(log n) sift at every depth.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::{BinaryHeapQueue, DetRng, EventQueue, SimDuration, SimTime};

/// Seed of the deterministic inter-event gap stream.
const SEED: u64 = 0xE0E0;

/// Gap distribution matched to the perf scenario: mostly sub-millisecond
/// follow-ups with an occasional keep-alive-scale (tens of seconds)
/// timer that exercises the wheel's upper levels.
fn gap(rng: &mut DetRng) -> SimDuration {
    let ns = if rng.chance(0.05) {
        rng.range(1_000_000_000, 60_000_000_000)
    } else {
        rng.range(1_000, 1_000_000)
    };
    SimDuration::nanos(ns)
}

macro_rules! churn_bench {
    ($group:expr, $label:expr, $queue:ty, $depth:expr) => {{
        let mut q: $queue = <$queue>::new();
        let mut rng = DetRng::new(SEED);
        for i in 0..$depth {
            let at = SimTime(q.now().0 + gap(&mut rng).as_nanos());
            q.push(at, i as u64);
        }
        $group.bench_function(format!("{}_depth_{:.0e}", $label, $depth as f64), |b| {
            b.iter(|| {
                let (t, tag) = q.pop().expect("queue stays full");
                q.push(t + gap(&mut rng), tag);
                criterion::black_box(tag)
            })
        });
    }};
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    for depth in [1_000usize, 100_000, 10_000_000] {
        churn_bench!(group, "wheel", EventQueue<u64>, depth);
        churn_bench!(group, "heap", BinaryHeapQueue<u64>, depth);
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
