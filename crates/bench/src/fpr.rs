//! Ablation: free page reporting vs the paper's reclaim interfaces.
//!
//! Free page reporting (\[21\], `VIRTIO_BALLOON_F_REPORTING`) is the
//! fourth state-of-practice interface next to ballooning, virtio-mem
//! and Squeezy: the guest periodically reports 2 MiB-contiguous free
//! chunks and the host drops their backing, without shrinking the VM.
//!
//! The experiment: a 16:1 VM of 256 MiB memhogs loses every other
//! instance; each interface then reclaims the freed half. Reported per
//! interface: how much host memory came back, how long it took, the
//! guest CPU burned, and whether the guest keeps its capacity (balloon
//! pins pages; unplug shrinks the VM; reporting keeps everything
//! usable).

use mem_types::MIB;
use sim_core::experiment::{mean_over, run_reduced, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, DetRng, SimDuration};
use vmm::Vm;

use crate::setup::{FarmKind, MemhogFarm};
use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct FprConfig {
    /// Co-resident memhog instances.
    pub instances: u32,
    /// Per-instance footprint.
    pub hog_bytes: u64,
    /// Churn rounds before the kill (fragmentation knob).
    pub churn_rounds: u32,
}

impl FprConfig {
    /// Full-scale configuration.
    pub fn paper() -> Self {
        FprConfig {
            instances: 16,
            hog_bytes: 256 * MIB,
            churn_rounds: 1,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        FprConfig {
            instances: 8,
            hog_bytes: 128 * MIB,
            churn_rounds: 1,
        }
    }
}

/// One interface's measured outcome.
#[derive(Clone, Copy, Debug)]
pub struct FprRow {
    /// Interface name.
    pub method: &'static str,
    /// Host memory actually released (MiB).
    pub reclaimed_mib: f64,
    /// Wall latency of the reclaim (ms).
    pub latency_ms: f64,
    /// Guest CPU consumed (ms) — the Figure-7 interference currency.
    pub guest_cpu_ms: f64,
    /// Guest capacity still plugged and allocatable afterwards (MiB).
    pub usable_after_mib: f64,
}

/// The per-interface sweep on the engine; trials re-churn the farms
/// from independent streams and the numeric columns are averaged. The
/// farm stream is derived from the trial only — NOT the interface — so
/// all four interfaces really do reclaim from identical farms.
struct FprExp<'a> {
    cfg: &'a FprConfig,
    trials: u32,
}

impl Experiment for FprExp<'_> {
    type Point = &'static str;
    type Output = FprRow;

    fn points(&self) -> Vec<&'static str> {
        vec!["free-page-reporting", "balloon", "virtio-mem", "squeezy"]
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        crate::setup::CHURN_SEED
    }

    fn run_trial(&self, method: &&'static str, ctx: &mut TrialCtx) -> FprRow {
        let cost = CostModel::default();
        let mut rng = DetRng::new(self.seed()).derive(ctx.trial);
        match *method {
            "free-page-reporting" => fpr_row(self.cfg, &cost, &mut rng),
            "balloon" => balloon_row(self.cfg, &cost, &mut rng),
            "virtio-mem" => virtio_row(self.cfg, &cost, &mut rng),
            _ => squeezy_row(self.cfg, &cost, &mut rng),
        }
    }
}

/// Runs the four interfaces over identical farms.
pub fn run(cfg: &FprConfig) -> Vec<FprRow> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &FprConfig, opts: &ExpOpts) -> Vec<FprRow> {
    let exp = FprExp {
        cfg,
        trials: opts.trials,
    };
    run_reduced(&exp, opts.effective_jobs(), |trials| FprRow {
        method: trials[0].method,
        reclaimed_mib: mean_over(&trials, |r| r.reclaimed_mib),
        latency_ms: mean_over(&trials, |r| r.latency_ms),
        guest_cpu_ms: mean_over(&trials, |r| r.guest_cpu_ms),
        usable_after_mib: mean_over(&trials, |r| r.usable_after_mib),
    })
}

/// Kills every other hog, returning the freed bytes.
fn kill_half(farm: &mut MemhogFarm) -> u64 {
    let mut freed_pages = 0;
    for i in (0..farm.hogs.len()).step_by(2) {
        freed_pages += farm.kill(i);
    }
    freed_pages * mem_types::PAGE_SIZE
}

/// Usable guest memory: present and either free or reclaimable.
fn usable_mib(vm: &Vm) -> f64 {
    vm.guest.free_bytes() as f64 / MIB as f64
}

fn fpr_row(cfg: &FprConfig, cost: &CostModel, rng: &mut DetRng) -> FprRow {
    let mut farm = MemhogFarm::build_seeded(
        FarmKind::Vanilla,
        cfg.instances,
        cfg.hog_bytes,
        cfg.churn_rounds,
        cost,
        rng,
    );
    kill_half(&mut farm);
    let used0 = farm.host.used_bytes();
    let mut fpr = balloon::FreePageReporter::new(balloon::DEFAULT_REPORT_ORDER);
    let mut latency = SimDuration::ZERO;
    let mut guest_cpu = SimDuration::ZERO;
    // Cycles until convergence (an idle cycle reports nothing new).
    loop {
        let c = farm.vm.report_free_pages(&mut farm.host, &mut fpr, cost);
        latency += c.latency();
        guest_cpu += c.guest_cpu;
        if c.chunks.is_empty() {
            break;
        }
    }
    FprRow {
        method: "free-page-reporting",
        reclaimed_mib: (used0 - farm.host.used_bytes()) as f64 / MIB as f64,
        latency_ms: latency.as_millis_f64(),
        guest_cpu_ms: guest_cpu.as_millis_f64(),
        usable_after_mib: usable_mib(&farm.vm),
    }
}

fn balloon_row(cfg: &FprConfig, cost: &CostModel, rng: &mut DetRng) -> FprRow {
    let mut farm = MemhogFarm::build_seeded(
        FarmKind::Vanilla,
        cfg.instances,
        cfg.hog_bytes,
        cfg.churn_rounds,
        cost,
        rng,
    );
    let freed = kill_half(&mut farm);
    let used0 = farm.host.used_bytes();
    let report = farm
        .vm
        .balloon_reclaim(&mut farm.host, freed, cost)
        .expect("free memory exists");
    FprRow {
        method: "balloon",
        reclaimed_mib: (used0 - farm.host.used_bytes()) as f64 / MIB as f64,
        latency_ms: report.latency().as_millis_f64(),
        guest_cpu_ms: report.guest_cpu.as_millis_f64(),
        // Inflated pages are pinned: not usable until deflation.
        usable_after_mib: usable_mib(&farm.vm),
    }
}

fn virtio_row(cfg: &FprConfig, cost: &CostModel, rng: &mut DetRng) -> FprRow {
    let mut farm = MemhogFarm::build_seeded(
        FarmKind::Vanilla,
        cfg.instances,
        cfg.hog_bytes,
        cfg.churn_rounds,
        cost,
        rng,
    );
    let freed = kill_half(&mut farm);
    let used0 = farm.host.used_bytes();
    let report = farm
        .vm
        .unplug(
            &mut farm.host,
            mem_types::align_up_to_block(freed) - mem_types::MEM_BLOCK_SIZE,
            None,
            cost,
        )
        .expect("candidates exist");
    FprRow {
        method: "virtio-mem",
        reclaimed_mib: (used0 - farm.host.used_bytes()) as f64 / MIB as f64,
        latency_ms: report.latency().as_millis_f64(),
        guest_cpu_ms: report.guest_cpu.as_millis_f64(),
        usable_after_mib: usable_mib(&farm.vm),
    }
}

fn squeezy_row(cfg: &FprConfig, cost: &CostModel, rng: &mut DetRng) -> FprRow {
    let mut farm = MemhogFarm::build_seeded(
        FarmKind::Squeezy,
        cfg.instances,
        cfg.hog_bytes,
        cfg.churn_rounds,
        cost,
        rng,
    );
    kill_half(&mut farm);
    let used0 = farm.host.used_bytes();
    let mut latency = SimDuration::ZERO;
    let mut guest_cpu = SimDuration::ZERO;
    let mut sq = farm.squeezy.take().expect("squeezy farm");
    let (_, report) = sq
        .unplug_partitions_batched(&mut farm.vm, &mut farm.host, usize::MAX, cost)
        .expect("freed partitions exist");
    latency += report.latency();
    guest_cpu += report.guest_cpu;
    FprRow {
        method: "squeezy",
        reclaimed_mib: (used0 - farm.host.used_bytes()) as f64 / MIB as f64,
        latency_ms: latency.as_millis_f64(),
        guest_cpu_ms: guest_cpu.as_millis_f64(),
        usable_after_mib: usable_mib(&farm.vm),
    }
}

/// Renders the comparison.
pub fn render(rows: &[FprRow]) -> String {
    let mut t = TextTable::new(&[
        "Method",
        "Reclaimed(MiB)",
        "Latency(ms)",
        "GuestCPU(ms)",
        "UsableAfter(MiB)",
    ]);
    for r in rows {
        t.row(vec![
            r.method.to_string(),
            format!("{:.0}", r.reclaimed_mib),
            format!("{:.0}", r.latency_ms),
            format!("{:.0}", r.guest_cpu_ms),
            format!("{:.0}", r.usable_after_mib),
        ]);
    }
    let mut s = String::from(
        "Ablation: free page reporting [21] vs balloon / virtio-mem / Squeezy\n\
         (16:1 memhog VM loses every other instance; each interface reclaims the half)\n",
    );
    s.push_str(&t.render());
    s.push_str(
        "reporting keeps the guest's capacity usable but converges over cycles;\n\
         balloon pins what it reclaims; unplug shrinks the VM; Squeezy does it instantly\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_reclaim_comparable_memory() {
        let rows = run(&FprConfig::quick());
        let get = |m: &str| *rows.iter().find(|r| r.method == m).unwrap();
        let fpr = get("free-page-reporting");
        let blln = get("balloon");
        let virt = get("virtio-mem");
        let sq = get("squeezy");
        let target = (FprConfig::quick().instances / 2) as f64
            * (FprConfig::quick().hog_bytes as f64 / MIB as f64);
        for r in [&fpr, &blln, &virt, &sq] {
            assert!(
                r.reclaimed_mib >= target * 0.5,
                "{}: only {} of {} MiB reclaimed",
                r.method,
                r.reclaimed_mib,
                target
            );
        }
        // Squeezy beats the synchronous baselines outright; reporting's
        // *mechanical* cost is small too (its deployment latency is the
        // reporting period, not the cycle cost), and it burns far less
        // guest CPU than migration or per-page inflation.
        assert!(sq.latency_ms < virt.latency_ms);
        assert!(sq.latency_ms < blln.latency_ms);
        assert!(fpr.guest_cpu_ms < virt.guest_cpu_ms);
        assert!(fpr.guest_cpu_ms < blln.guest_cpu_ms);
        assert!(sq.guest_cpu_ms < virt.guest_cpu_ms);
    }

    #[test]
    fn reporting_preserves_usable_capacity() {
        let rows = run(&FprConfig::quick());
        let get = |m: &str| *rows.iter().find(|r| r.method == m).unwrap();
        // Reporting leaves the freed memory allocatable in the guest;
        // balloon pins it; unplug removes it.
        assert!(
            get("free-page-reporting").usable_after_mib > get("balloon").usable_after_mib + 100.0
        );
        assert!(
            get("free-page-reporting").usable_after_mib
                > get("virtio-mem").usable_after_mib + 100.0
        );
    }

    #[test]
    fn render_mentions_all_methods() {
        let s = render(&run(&FprConfig::quick()));
        for m in ["free-page-reporting", "balloon", "virtio-mem", "squeezy"] {
            assert!(s.contains(m), "{m} missing");
        }
    }
}
