//! Ablation: horizontal vs vertical vs hybrid scale-up (§7, \[56\]).
//!
//! Sweeps burst size past the VM's concurrency factor N and reports,
//! per strategy: served instances, mean/max start latency, host
//! footprint and VM count. The expected shape: vertical is cheapest but
//! capped at N; horizontal is uncapped but pays boot + replication per
//! instance; hybrid tracks vertical below N and degrades gracefully
//! above it, paying one clone per extra VM.

use faas::{absorb_burst, BurstOutcome, ScaleStrategy};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::CostModel;
use workloads::FunctionKind;

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Function under test.
    pub kind: FunctionKind,
    /// Per-VM concurrency factor N.
    pub n_per_vm: u32,
    /// Burst sizes to sweep.
    pub bursts: Vec<u32>,
}

impl HybridConfig {
    /// Full-scale configuration: N=8, bursts to 3N.
    pub fn paper() -> Self {
        HybridConfig {
            kind: FunctionKind::Cnn,
            n_per_vm: 8,
            bursts: vec![4, 8, 12, 16, 24],
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        HybridConfig {
            kind: FunctionKind::Cnn,
            n_per_vm: 3,
            bursts: vec![2, 3, 6],
        }
    }
}

/// The `bursts × strategies` sweep on the engine; the burst model is
/// deterministic, so it clamps to one trial.
struct HybridExp<'a> {
    cfg: &'a HybridConfig,
}

impl Experiment for HybridExp<'_> {
    type Point = (u32, ScaleStrategy);
    type Output = BurstOutcome;

    fn points(&self) -> Vec<(u32, ScaleStrategy)> {
        self.cfg
            .bursts
            .iter()
            .flat_map(|&b| ScaleStrategy::ALL.into_iter().map(move |s| (b, s)))
            .collect()
    }

    fn run_trial(&self, &(burst, strategy): &Self::Point, _ctx: &mut TrialCtx) -> BurstOutcome {
        let cost = CostModel::default();
        absorb_burst(self.cfg.kind, strategy, self.cfg.n_per_vm, burst, &cost)
            .expect("host is unconstrained")
    }
}

/// Runs the sweep: one outcome per burst × strategy.
pub fn run(cfg: &HybridConfig) -> Vec<BurstOutcome> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &HybridConfig, opts: &ExpOpts) -> Vec<BurstOutcome> {
    run_experiment(&HybridExp { cfg }, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

/// Renders the sweep as a text table.
pub fn render(cfg: &HybridConfig, rows: &[BurstOutcome]) -> String {
    let mut t = TextTable::new(&[
        "Burst",
        "Strategy",
        "Served",
        "MeanStart(ms)",
        "MaxStart(ms)",
        "Host(MiB)",
        "VMs",
    ]);
    for r in rows {
        t.row(vec![
            format!("{}", r.burst),
            r.strategy.name().to_string(),
            format!("{}", r.served),
            format!("{:.0}", r.mean_start_ms),
            format!("{:.0}", r.max_start_ms),
            format!("{:.0}", r.host_mib),
            format!("{}", r.vms),
        ]);
    }
    let mut out = format!(
        "Ablation: burst absorption, {} with concurrency N={} per VM (§7 [56])\n",
        cfg.kind.name(),
        cfg.n_per_vm,
    );
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_shape_holds() {
        let cfg = HybridConfig::quick();
        let rows = run(&cfg);
        let get = |burst: u32, s: ScaleStrategy| {
            *rows
                .iter()
                .find(|r| r.burst == burst && r.strategy == s)
                .unwrap()
        };
        // Below N: all serve everything; vertical == hybrid shape.
        let v = get(2, ScaleStrategy::Vertical);
        let h = get(2, ScaleStrategy::Hybrid);
        let o = get(2, ScaleStrategy::Horizontal);
        assert_eq!(v.served, 2);
        assert_eq!(h.served, 2);
        assert_eq!(o.served, 2);
        assert!(h.mean_start_ms < o.mean_start_ms);
        // Above N: vertical saturates, hybrid and horizontal serve all.
        let v = get(6, ScaleStrategy::Vertical);
        let h = get(6, ScaleStrategy::Hybrid);
        let o = get(6, ScaleStrategy::Horizontal);
        assert_eq!(v.served, 3);
        assert_eq!(h.served, 6);
        assert_eq!(o.served, 6);
        // Hybrid beats horizontal on both latency and memory.
        assert!(h.mean_start_ms < o.mean_start_ms);
        assert!(h.host_mib < o.host_mib);
        assert!(h.vms < o.vms);
    }

    #[test]
    fn render_includes_all_strategies() {
        let cfg = HybridConfig::quick();
        let s = render(&cfg, &run(&cfg));
        assert!(s.contains("vertical"));
        assert!(s.contains("horizontal"));
        assert!(s.contains("hybrid"));
    }
}
