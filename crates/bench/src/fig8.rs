//! Figure 8: memory reclamation throughput (MiB/s) while the FaaS
//! runtime evicts function instances under realistic bursty load —
//! vanilla virtio-mem vs Squeezy, per function plus geomean.

use faas::{BackendKind, Deployment, FaasSim, SimConfig};
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::metrics::geomean;
use sim_core::DetRng;
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// Trace duration per function.
    pub duration_s: f64,
    /// Per-function max concurrency.
    pub concurrency: u32,
    /// Keep-alive window (short enough to drive evictions in-trace).
    pub keepalive_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Default (paper-shaped) configuration.
    pub fn paper() -> Self {
        Fig8Config {
            duration_s: 360.0,
            concurrency: 12,
            keepalive_s: 30.0,
            seed: 8,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig8Config {
            duration_s: 150.0,
            concurrency: 6,
            keepalive_s: 20.0,
            seed: 8,
        }
    }
}

/// One bar pair of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Function.
    pub kind: FunctionKind,
    /// Vanilla virtio-mem reclamation throughput (MiB/s).
    pub virtio_mibs: f64,
    /// Squeezy reclamation throughput (MiB/s).
    pub squeezy_mibs: f64,
}

/// The `functions × backends` sweep on the engine. The trace stream is
/// derived from `(seed, function, trial)` only — NOT the backend — so
/// the two backends of a pair always face identical arrivals, and
/// trials average the throughput over independent traces.
struct Fig8Exp<'a> {
    cfg: &'a Fig8Config,
    trials: u32,
}

impl Experiment for Fig8Exp<'_> {
    type Point = (FunctionKind, BackendKind);
    type Output = f64;

    fn points(&self) -> Vec<(FunctionKind, BackendKind)> {
        FunctionKind::ALL
            .iter()
            .flat_map(|&k| [(k, BackendKind::VirtioMem), (k, BackendKind::Squeezy)])
            .collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, &(kind, backend): &Self::Point, ctx: &mut TrialCtx) -> f64 {
        // Pair the backends on one trace: derive from the function
        // index and trial, ignoring the point's backend half.
        let kind_idx = FunctionKind::ALL.iter().position(|&k| k == kind).unwrap() as u64;
        let mut rng = DetRng::new(self.cfg.seed)
            .derive(kind_idx)
            .derive(ctx.trial);
        run_one(kind, backend, self.cfg, &mut rng, ctx.trial)
    }
}

/// Runs each Table-1 function on its own N:1 VM under a bursty trace,
/// once per backend, and reports eviction-driven reclaim throughput
/// (averaged over trials).
pub fn run(cfg: &Fig8Config) -> Vec<Fig8Row> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig8Config, opts: &ExpOpts) -> Vec<Fig8Row> {
    let exp = Fig8Exp {
        cfg,
        trials: opts.trials,
    };
    let cells = run_experiment(&exp, opts.effective_jobs());
    FunctionKind::ALL
        .iter()
        .zip(cells.chunks(2))
        .map(|(&kind, pair)| Fig8Row {
            kind,
            virtio_mibs: mean_over(&pair[0], |&t| t),
            squeezy_mibs: mean_over(&pair[1], |&t| t),
        })
        .collect()
}

fn run_one(
    kind: FunctionKind,
    backend: BackendKind,
    cfg: &Fig8Config,
    rng: &mut DetRng,
    trial: u64,
) -> f64 {
    let arrivals = bursty_arrivals(
        &BurstyTraceConfig {
            duration_s: cfg.duration_s * 0.6,
            base_rps: 0.5,
            burst_rps: 8.0,
            mean_burst_s: 15.0,
            mean_idle_s: 25.0,
        },
        rng,
    );
    let sim_cfg = SimConfig {
        keepalive_s: cfg.keepalive_s,
        seed: cfg.seed,
        trial,
        ..SimConfig::single_vm(
            backend,
            Deployment {
                kind,
                concurrency: cfg.concurrency,
                arrivals,
            },
            cfg.duration_s,
        )
    };
    let result = FaasSim::new(sim_cfg).expect("boot").run();
    result.total_reclaims().throughput_mibs()
}

/// Renders the figure with per-function bars and the geomean.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut t = TextTable::new(&["Function", "Virtio-mem(MiB/s)", "Squeezy(MiB/s)", "Speedup"]);
    for r in rows {
        t.row(vec![
            r.kind.name().to_string(),
            format!("{:.0}", r.virtio_mibs),
            format!("{:.0}", r.squeezy_mibs),
            format!("{:.1}x", r.squeezy_mibs / r.virtio_mibs.max(1e-9)),
        ]);
    }
    let v: Vec<f64> = rows.iter().map(|r| r.virtio_mibs).collect();
    let s: Vec<f64> = rows.iter().map(|r| r.squeezy_mibs).collect();
    let gv = geomean(&v);
    let gs = geomean(&s);
    t.row(vec![
        "Geomean".into(),
        format!("{gv:.0}"),
        format!("{gs:.0}"),
        format!("{:.1}x", gs / gv.max(1e-9)),
    ]);
    let mut out = String::from(
        "Figure 8: memory reclamation throughput while evicting instances under FaaS load\n",
    );
    out.push_str(&t.render());
    out.push_str("(paper: Squeezy achieves ~7x higher reclamation throughput on average)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squeezy_throughput_dominates_every_function() {
        let rows = run(&Fig8Config::quick());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.virtio_mibs > 0.0 && r.squeezy_mibs > 0.0,
                "{}: evictions produced reclaims",
                r.kind.name()
            );
            assert!(
                r.squeezy_mibs > 2.0 * r.virtio_mibs,
                "{}: squeezy {:.0} vs virtio {:.0}",
                r.kind.name(),
                r.squeezy_mibs,
                r.virtio_mibs
            );
        }
    }

    #[test]
    fn render_includes_geomean() {
        let s = render(&run(&Fig8Config::quick()));
        assert!(s.contains("Geomean"));
        assert!(s.contains("Figure 8"));
    }
}
