//! Figure 6: latency to reclaim 2 GiB from a 64 GiB VM while the
//! utilization of the rest of the memory grows. Vanilla virtio-mem
//! latency climbs (and fluctuates) with occupancy; Squeezy stays flat.
//!
//! Following the paper, page-zeroing overheads are disabled for vanilla
//! virtio-mem too, isolating the effect of page migrations.

use guest_mm::GuestMmConfig;
use mem_types::{GIB, MIB};
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, DetRng, SimDuration};
use squeezy::{SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::Memhog;

use crate::setup::{churn_seeded, fill_interleaved};
use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Total VM (hotplug) size (paper: 64 GiB).
    pub vm_bytes: u64,
    /// Reclaim target (paper: 2 GiB).
    pub reclaim_bytes: u64,
    /// Utilization points in percent.
    pub utilizations: Vec<u32>,
}

impl Fig6Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig6Config {
            vm_bytes: 64 * GIB,
            reclaim_bytes: 2 * GIB,
            utilizations: (0..=10).map(|u| u * 10).collect(),
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig6Config {
            vm_bytes: 4 * GIB,
            reclaim_bytes: GIB,
            utilizations: vec![0, 50, 90],
        }
    }
}

/// One point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Point {
    /// Memory utilization of the rest of the VM (%).
    pub utilization_pct: u32,
    /// Vanilla virtio-mem reclaim latency.
    pub virtio_ms: f64,
    /// Squeezy reclaim latency.
    pub squeezy_ms: f64,
}

/// One sweep cell: a utilization level measured under one method.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Method {
    Virtio,
    Squeezy,
}

/// The `utilizations × methods` sweep on the engine. Virtio trials
/// re-shuffle the survivor subset and churn from independent streams
/// and the latencies are averaged — the sampling noise shrinks with
/// `1/sqrt(trials)`. The Squeezy path is fully deterministic, so its
/// cells run once and skip (return `None` for) the repeat trials
/// instead of re-simulating identical results.
struct Fig6Exp<'a> {
    cfg: &'a Fig6Config,
    trials: u32,
}

impl Experiment for Fig6Exp<'_> {
    type Point = (u32, Method);
    type Output = Option<SimDuration>;

    fn points(&self) -> Vec<(u32, Method)> {
        self.cfg
            .utilizations
            .iter()
            .flat_map(|&u| [(u, Method::Virtio), (u, Method::Squeezy)])
            .collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        0x51EE2
    }

    fn run_trial(&self, &(u, method): &Self::Point, ctx: &mut TrialCtx) -> Option<SimDuration> {
        let cost = CostModel::default();
        match method {
            Method::Virtio => Some(virtio_point(self.cfg, u, &cost, &mut ctx.rng)),
            Method::Squeezy if ctx.trial == 0 => Some(squeezy_point(self.cfg, u, &cost)),
            Method::Squeezy => None,
        }
    }
}

/// Runs the sweep.
pub fn run(cfg: &Fig6Config) -> Vec<Fig6Point> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig6Config, opts: &ExpOpts) -> Vec<Fig6Point> {
    let exp = Fig6Exp {
        cfg,
        trials: opts.trials,
    };
    let cells = run_experiment(&exp, opts.effective_jobs());
    // Cells arrive as (virtio, squeezy) pairs per utilization; skipped
    // repeat trials (deterministic Squeezy cells) drop out of the mean.
    let mean_ms = |trials: &[Option<SimDuration>]| {
        let ran: Vec<SimDuration> = trials.iter().flatten().copied().collect();
        mean_over(&ran, |d| d.as_millis_f64())
    };
    cfg.utilizations
        .iter()
        .zip(cells.chunks(2))
        .map(|(&u, pair)| Fig6Point {
            utilization_pct: u,
            virtio_ms: mean_ms(&pair[0]),
            squeezy_ms: mean_ms(&pair[1]),
        })
        .collect()
}

/// Vanilla: fully occupy the VM with small interleaved memhogs, then
/// kill a random subset so the *remaining* utilization is `u` % — the
/// survivors' pages stay scattered across every block, exactly the
/// "random placement ... over multiple memory blocks" the paper
/// attributes the latency growth and fluctuation to (§6.1.1). Finally
/// unplug the reclaim target.
fn virtio_point(cfg: &Fig6Config, u: u32, cost: &CostModel, rng: &mut DetRng) -> SimDuration {
    let mut host = HostMemory::new(cfg.vm_bytes + 8 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: cfg.vm_bytes,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 8.0,
        },
        &mut host,
    )
    .expect("host fits");
    // Isolate migrations: no zeroing for vanilla either (paper §6.1.1).
    vm.guest.unplug_aware_zeroing_skip = true;
    vm.plug(cfg.vm_bytes, cost).expect("plug region");

    // Fill everything except the reclaim target with 256 MiB hogs whose
    // footprints interleave at 16 MiB granularity.
    let hog_bytes = 256 * MIB;
    let n = (cfg.vm_bytes - cfg.reclaim_bytes) / hog_bytes;
    let mut hogs = Vec::new();
    for _ in 0..n {
        hogs.push(Memhog::spawn(&mut vm, hog_bytes));
    }
    fill_interleaved(&mut vm, &mut host, &hogs, cost);
    churn_seeded(&mut vm, &mut host, &hogs, 1, cost, rng);

    // Kill a random subset until utilization drops to `u` %.
    let mut order: Vec<usize> = (0..hogs.len()).collect();
    rng.shuffle(&mut order);
    let keep = (hogs.len() as u64 * u as u64 / 100) as usize;
    for &i in order.iter().skip(keep) {
        hogs[i].kill(&mut vm).expect("alive");
    }

    let report = vm
        .unplug(
            &mut host,
            mem_types::align_up_to_block(cfg.reclaim_bytes),
            None,
            cost,
        )
        .expect("reclaimable");
    report.latency()
}

/// Squeezy: identical occupancy, but instances are partitioned; reclaim
/// one empty populated partition.
fn squeezy_point(cfg: &Fig6Config, u: u32, cost: &CostModel) -> SimDuration {
    let part_bytes = mem_types::align_up_to_block(cfg.reclaim_bytes);
    let n_parts = (cfg.vm_bytes / part_bytes) as u32;
    let mut host = HostMemory::new(cfg.vm_bytes + 8 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: cfg.vm_bytes,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 8.0,
        },
        &mut host,
    )
    .expect("host fits");
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: part_bytes,
            shared_bytes: 0,
            concurrency: n_parts,
        },
        cost,
    )
    .expect("layout fits");

    // Occupy `u` % of the other partitions with instances.
    let occupied_parts = ((n_parts - 1) as u64 * u as u64 / 100) as u32;
    for _ in 0..occupied_parts {
        let hog = Memhog::spawn(&mut vm, part_bytes * 9 / 10);
        sq.plug_partition(&mut vm, cost).expect("partition");
        sq.attach(&mut vm, hog.pid).expect("attach");
        hog.warm_up(&mut vm, &mut host, cost).expect("fits");
    }
    // The measured partition: populated, then its instance exits.
    let victim = Memhog::spawn(&mut vm, part_bytes / 2);
    sq.plug_partition(&mut vm, cost).expect("partition");
    sq.attach(&mut vm, victim.pid).expect("attach");
    victim.warm_up(&mut vm, &mut host, cost).expect("fits");
    victim.kill(&mut vm).expect("alive");
    sq.detach(victim.pid).expect("attached");

    let (_, report) = sq
        .unplug_partition(&mut vm, &mut host, cost)
        .expect("free partition");
    report.latency()
}

/// Renders the figure as a text table.
pub fn render(points: &[Fig6Point]) -> String {
    let mut t = TextTable::new(&["Utilization(%)", "Virtio-mem(ms)", "Squeezy(ms)"]);
    for p in points {
        t.row(vec![
            format!("{}", p.utilization_pct),
            format!("{:.0}", p.virtio_ms),
            format!("{:.0}", p.squeezy_ms),
        ]);
    }
    let mut out =
        String::from("Figure 6: reclaiming 2 GiB out of a 64 GiB VM vs. memory utilization\n");
    out.push_str(&t.render());
    if let (Some(first), Some(last)) = (points.first(), points.last()) {
        out.push_str(&format!(
            "virtio-mem latency grows {:.1}x from {}% to {}% utilization; \
             Squeezy varies {:.2}x (paper: flat ~125 ms)\n",
            last.virtio_ms / first.virtio_ms.max(1.0),
            first.utilization_pct,
            last.utilization_pct,
            last.squeezy_ms / first.squeezy_ms.max(1.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn virtio_grows_with_utilization_squeezy_flat() {
        let points = run_with(&Fig6Config::quick(), &ExpOpts::auto().with_trials(2));
        assert_eq!(points.len(), 3);
        let lo = &points[0];
        let hi = &points[2];
        assert!(
            hi.virtio_ms > 2.0 * lo.virtio_ms,
            "virtio {} -> {} should grow",
            lo.virtio_ms,
            hi.virtio_ms
        );
        let ratio = hi.squeezy_ms / lo.squeezy_ms;
        assert!(
            (0.8..1.2).contains(&ratio),
            "squeezy {} -> {} should stay flat",
            lo.squeezy_ms,
            hi.squeezy_ms
        );
        // Squeezy beats virtio at every point.
        for p in &points {
            assert!(p.squeezy_ms < p.virtio_ms, "{p:?}");
        }
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn render_mentions_paper_target() {
        let points = run(&Fig6Config::quick());
        let s = render(&points);
        assert!(s.contains("Figure 6"));
        assert!(s.contains("paper: flat"));
    }
}
