//! The pinned event-engine throughput benchmark (`repro perf`).
//!
//! One large, fully deterministic cluster — many identical hosts, a
//! steady all-warm drumbeat of invocations round-robined across them —
//! run single-threaded and timed with a wall clock. The figure of merit
//! is **events/sec** through the shared engine: the simulation outcome
//! (completions, events processed, peak queue depth) is byte-stable
//! across machines, only the wall time varies. This is the permanent
//! perf baseline later PRs diff against, so the scenario must never
//! change: `paper()` and `quick()` are pinned.
//!
//! The workload is deliberately warm-path heavy: per-host per-tenant
//! gaps sit far below the keep-alive window, so after the first round
//! of cold starts every invocation exercises the steady-state
//! dispatch/complete path the engine optimizations target.

use std::time::Instant;

use faas::cluster::{ClusterConfig, ClusterSim, RoundRobin, TenantTrace};
use faas::config::{BackendKind, Deployment, HarvestConfig, SimConfig, VmSpec};
use sim_core::DetRng;
use workloads::FunctionKind;

use crate::table::TextTable;

/// Root seed of the pinned scenario's per-host jitter streams.
const PERF_SEED: u64 = 0x9EF0;

/// Experiment scale. The rates are fixed; only the host count differs
/// between the pinned tiers, so quick runs exercise the same per-host
/// dynamics as the full one.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Offered request rate per host (requests/sec).
    pub per_host_rps: f64,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Tenant functions (one deployment slot each on every host's VM).
    pub tenants: usize,
}

impl PerfConfig {
    /// Full scale: ~1000 hosts, ~2M invocations.
    pub fn paper() -> Self {
        PerfConfig {
            hosts: 1000,
            per_host_rps: 5.0,
            duration_s: 400.0,
            tenants: 4,
        }
    }

    /// CI scale: 32 hosts, ~64K invocations.
    pub fn quick() -> Self {
        PerfConfig {
            hosts: 32,
            per_host_rps: 5.0,
            duration_s: 400.0,
            tenants: 4,
        }
    }

    /// The hand-built cluster the benchmark runs (the scenario layer
    /// caps cluster sizes well below 1000 hosts, so the perf scenario
    /// assembles its `ClusterConfig` directly).
    pub fn cluster(&self) -> ClusterConfig {
        let host = |seed: u64| SimConfig {
            backend: BackendKind::Squeezy,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: (0..self.tenants)
                    .map(|_| Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: Vec::new(),
                    })
                    .collect(),
                vcpus: Some(4.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 60.0,
            duration_s: self.duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial: 0,
        };
        // A deterministic drumbeat: fixed per-tenant cadence with a
        // phase offset so tenants never fire simultaneously. Round-robin
        // routing then spreads each tenant evenly over the hosts,
        // keeping every per-host instance inside its keep-alive window.
        let per_tenant_rps = self.hosts as f64 * self.per_host_rps / self.tenants as f64;
        let tenants = (0..self.tenants)
            .map(|ti| {
                let gap = 1.0 / per_tenant_rps;
                let phase = gap * (ti as f64 + 0.5) / self.tenants as f64;
                let mut arrivals = Vec::new();
                let mut t = phase;
                while t < self.duration_s {
                    arrivals.push(t);
                    t += gap;
                }
                TenantTrace {
                    vm: 0,
                    dep: ti,
                    arrivals,
                }
            })
            .collect();
        ClusterConfig {
            hosts: (0..self.hosts)
                .map(|h| host(DetRng::new(PERF_SEED).derive(h as u64).seed()))
                .collect(),
            tenants,
        }
    }
}

/// One timed run of the pinned scenario.
#[derive(Clone, Debug)]
pub struct PerfCell {
    pub hosts: usize,
    /// Invocations offered by the traces.
    pub invocations: u64,
    /// Invocations completed (sanity: must equal offered).
    pub completed: u64,
    /// Events popped by the shared engine.
    pub events: u64,
    /// High-water mark of the event queue.
    pub peak_depth: usize,
    /// Wall time to boot the hosts (not part of the throughput figure).
    pub setup_s: f64,
    /// Wall time of the event loop + result assembly.
    pub run_s: f64,
    /// The North Star: `events / run_s`.
    pub events_per_sec: f64,
}

/// Runs the pinned scenario once, single-threaded, and times it.
pub fn run(cfg: &PerfConfig) -> PerfCell {
    let cluster = cfg.cluster();
    let invocations: u64 = cluster
        .tenants
        .iter()
        .map(|t| t.arrivals.len() as u64)
        .sum();
    let t0 = Instant::now();
    let sim = ClusterSim::new(cluster, Box::new(RoundRobin::default())).expect("hosts boot");
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let out = sim.run();
    let run_s = t1.elapsed().as_secs_f64();
    PerfCell {
        hosts: cfg.hosts,
        invocations,
        completed: out.completed,
        events: out.events_processed,
        peak_depth: out.peak_queue_depth,
        setup_s,
        run_s,
        events_per_sec: out.events_processed as f64 / run_s,
    }
}

/// Renders the perf summary. Wall-time figures vary by machine, so this
/// section is excluded from the digest-stable `repro all` report.
pub fn render(c: &PerfCell) -> String {
    let mut t = TextTable::new(&[
        "Hosts",
        "Invocations",
        "Completed",
        "Events",
        "PeakQ",
        "Setup(s)",
        "Run(s)",
        "Events/s",
    ]);
    t.row(vec![
        format!("{}", c.hosts),
        format!("{}", c.invocations),
        format!("{}", c.completed),
        format!("{}", c.events),
        format!("{}", c.peak_depth),
        format!("{:.2}", c.setup_s),
        format!("{:.2}", c.run_s),
        format!("{:.0}", c.events_per_sec),
    ]);
    let mut out = String::from(
        "Perf: pinned event-engine throughput scenario (single-core, single-thread)\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Events/s is the engine North Star; the simulation outcome is \
         deterministic, only wall time varies by machine.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized pinned scenario (same construction, tiny scale).
    fn tiny() -> PerfConfig {
        PerfConfig {
            hosts: 2,
            per_host_rps: 2.0,
            duration_s: 30.0,
            tenants: 2,
        }
    }

    #[test]
    fn perf_scenario_serves_every_invocation() {
        let cell = run(&tiny());
        assert!(cell.invocations > 0);
        assert_eq!(
            cell.completed, cell.invocations,
            "an unsaturated warm cluster serves everything"
        );
        assert!(cell.events >= cell.invocations, "≥ 1 event per invocation");
        assert!(cell.peak_depth > 0);
        assert!(cell.events_per_sec > 0.0);
    }

    #[test]
    fn perf_scenario_outcome_is_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.peak_depth, b.peak_depth);
    }
}
