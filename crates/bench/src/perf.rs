//! The pinned event-engine throughput benchmark (`repro perf`).
//!
//! One large, fully deterministic cluster — many identical hosts, a
//! steady all-warm drumbeat of invocations round-robined across them —
//! run single-threaded and timed with a wall clock. The figure of merit
//! is **events/sec** through the shared engine: the simulation outcome
//! (completions, events processed, peak queue depth) is byte-stable
//! across machines, only the wall time varies. This is the permanent
//! perf baseline later PRs diff against, so the scenario must never
//! change: `paper()` and `quick()` are pinned.
//!
//! The workload is deliberately warm-path heavy: per-host per-tenant
//! gaps sit far below the keep-alive window, so after the first round
//! of cold starts every invocation exercises the steady-state
//! dispatch/complete path the engine optimizations target.

use std::time::Instant;

use faas::cluster::{ClusterConfig, ClusterSim, RoundRobin, TenantTrace, LATENCY_RESERVOIR_CAP};
use faas::config::{BackendKind, Deployment, HarvestConfig, SimConfig, VmSpec};
use faas::fleet::{FixedFleet, FleetConfig, FleetSim};
use sim_core::DetRng;
use workloads::FunctionKind;

use crate::table::TextTable;

/// Root seed of the pinned scenario's per-host jitter streams.
const PERF_SEED: u64 = 0x9EF0;

/// Experiment scale. The rates are fixed; only the host count differs
/// between the pinned tiers, so quick runs exercise the same per-host
/// dynamics as the full one.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Offered request rate per host (requests/sec).
    pub per_host_rps: f64,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Tenant functions (one deployment slot each on every host's VM).
    pub tenants: usize,
}

impl PerfConfig {
    /// Full scale: ~1000 hosts, ~2M invocations.
    pub fn paper() -> Self {
        PerfConfig {
            hosts: 1000,
            per_host_rps: 5.0,
            duration_s: 400.0,
            tenants: 4,
        }
    }

    /// CI scale: 32 hosts, ~64K invocations.
    pub fn quick() -> Self {
        PerfConfig {
            hosts: 32,
            per_host_rps: 5.0,
            duration_s: 400.0,
            tenants: 4,
        }
    }

    /// The hand-built cluster the benchmark runs (the scenario layer
    /// caps cluster sizes well below 1000 hosts, so the perf scenario
    /// assembles its `ClusterConfig` directly).
    pub fn cluster(&self) -> ClusterConfig {
        let host = |seed: u64| SimConfig {
            backend: BackendKind::Squeezy,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: (0..self.tenants)
                    .map(|_| Deployment {
                        kind: FunctionKind::Html,
                        concurrency: 2,
                        arrivals: Vec::new(),
                    })
                    .collect(),
                vcpus: Some(4.0),
            }],
            host_capacity: u64::MAX / 2,
            keepalive_s: 60.0,
            duration_s: self.duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial: 0,
        };
        // A deterministic drumbeat: fixed per-tenant cadence with a
        // phase offset so tenants never fire simultaneously. Round-robin
        // routing then spreads each tenant evenly over the hosts,
        // keeping every per-host instance inside its keep-alive window.
        let per_tenant_rps = self.hosts as f64 * self.per_host_rps / self.tenants as f64;
        let tenants = (0..self.tenants)
            .map(|ti| {
                let gap = 1.0 / per_tenant_rps;
                let phase = gap * (ti as f64 + 0.5) / self.tenants as f64;
                let mut arrivals = Vec::new();
                let mut t = phase;
                while t < self.duration_s {
                    arrivals.push(t);
                    t += gap;
                }
                TenantTrace {
                    vm: 0,
                    dep: ti,
                    arrivals,
                }
            })
            .collect();
        ClusterConfig {
            hosts: (0..self.hosts)
                .map(|h| host(DetRng::new(PERF_SEED).derive(h as u64).seed()))
                .collect(),
            tenants,
        }
    }
}

/// One timed run of the pinned scenario.
#[derive(Clone, Debug)]
pub struct PerfCell {
    pub hosts: usize,
    /// Invocations offered by the traces.
    pub invocations: u64,
    /// Invocations completed (sanity: must equal offered).
    pub completed: u64,
    /// Events popped by the shared engine.
    pub events: u64,
    /// High-water mark of the event queue.
    pub peak_depth: usize,
    /// Wall time to boot the hosts (not part of the throughput figure).
    pub setup_s: f64,
    /// Wall time of the event loop + result assembly.
    pub run_s: f64,
    /// The North Star: `events / run_s`.
    pub events_per_sec: f64,
}

/// Runs the pinned scenario once, single-threaded, and times it.
pub fn run(cfg: &PerfConfig) -> PerfCell {
    let cluster = cfg.cluster();
    let invocations: u64 = cluster
        .tenants
        .iter()
        .map(|t| t.arrivals.len() as u64)
        .sum();
    let t0 = Instant::now();
    let sim = ClusterSim::new(cluster, Box::new(RoundRobin::default())).expect("hosts boot");
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let out = sim.run();
    let run_s = t1.elapsed().as_secs_f64();
    PerfCell {
        hosts: cfg.hosts,
        invocations,
        completed: out.completed,
        events: out.events_processed,
        peak_depth: out.peak_queue_depth,
        setup_s,
        run_s,
        events_per_sec: out.events_processed as f64 / run_s,
    }
}

/// Renders the perf summary. Wall-time figures vary by machine, so this
/// section is excluded from the digest-stable `repro all` report.
pub fn render(c: &PerfCell) -> String {
    let mut t = TextTable::new(&[
        "Hosts",
        "Invocations",
        "Completed",
        "Events",
        "PeakQ",
        "Setup(s)",
        "Run(s)",
        "Events/s",
    ]);
    t.row(vec![
        format!("{}", c.hosts),
        format!("{}", c.invocations),
        format!("{}", c.completed),
        format!("{}", c.events),
        format!("{}", c.peak_depth),
        format!("{:.2}", c.setup_s),
        format!("{:.2}", c.run_s),
        format!("{:.0}", c.events_per_sec),
    ]);
    let mut out = String::from(
        "Perf: pinned event-engine throughput scenario (single-core, single-thread)\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Events/s is the engine North Star; the simulation outcome is \
         deterministic, only wall time varies by machine.\n",
    );
    out
}

/// Scale of the streaming-replay benchmark (`repro perf --trace`): a
/// fixed fleet fed lazily from an on-disk azure-minute trace. Unlike
/// the drumbeat scenario above, the arrivals are never materialized —
/// the figure of merit is that a multi-day, multi-million-invocation
/// replay finishes with every per-function accumulator still under its
/// reservoir cap and the event queue tracking in-flight work only.
#[derive(Clone, Debug)]
pub struct TracePerfConfig {
    /// Trace length in minutes (the simulated duration is `minutes *
    /// 60` seconds).
    pub minutes: u64,
    /// Hosts in the frozen fleet.
    pub hosts: usize,
    /// Peak of the diurnal per-minute invocation envelope.
    pub peak_per_minute: f64,
}

impl TracePerfConfig {
    /// Full scale: the committed 3-day trace (~2.1M invocations). The
    /// rendered text is byte-identical to
    /// [`workloads::sample_azure_3day`] — i.e. to
    /// `examples/traces/azure_3day.csv` — which a test pins.
    pub fn paper() -> Self {
        TracePerfConfig {
            minutes: 3 * 1440,
            hosts: 4,
            peak_per_minute: 900.0,
        }
    }

    /// CI scale: the first 4 hours of the same envelope (~100K
    /// invocations), same per-minute dynamics.
    pub fn quick() -> Self {
        TracePerfConfig {
            minutes: 240,
            hosts: 4,
            peak_per_minute: 900.0,
        }
    }

    /// Renders the trace text (azure-minute format, same seed and
    /// tenant mix as the committed sample at every scale).
    fn trace_text(&self) -> String {
        let kinds = [
            FunctionKind::Html,
            FunctionKind::Cnn,
            FunctionKind::Bfs,
            FunctionKind::Bert,
        ];
        workloads::render_azure_minute(
            0xA2_2026,
            &kinds,
            &workloads::sample_azure_rows(self.minutes, kinds.len(), self.peak_per_minute),
        )
    }
}

/// One timed streaming replay.
#[derive(Clone, Debug)]
pub struct TracePerfCell {
    pub hosts: usize,
    pub minutes: u64,
    /// Arrivals the feed expanded out of the trace file.
    pub invocations: u64,
    pub completed: u64,
    pub events: u64,
    /// High-water mark of the event queue — O(in-flight), not O(trace).
    pub peak_depth: usize,
    /// Fleet-wide latency reservoir size (≤ [`LATENCY_RESERVOIR_CAP`]).
    pub reservoir_len: usize,
    /// Largest per-function latency sample count on any host (≤ cap).
    pub max_func_samples: usize,
    /// Process peak RSS (`VmHWM`) in MiB, where the platform exposes it.
    pub peak_rss_mib: Option<f64>,
    pub setup_s: f64,
    pub run_s: f64,
    pub events_per_sec: f64,
}

/// Peak resident set of this process, from `/proc/self/status`.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Writes the trace, replays it through a frozen fleet pulling arrivals
/// lazily off disk, and asserts the memory-boundedness contract: capped
/// reservoirs, no time series, queue depth independent of trace length.
pub fn run_trace(cfg: &TracePerfConfig) -> TracePerfCell {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/perf-traces");
    std::fs::create_dir_all(dir).expect("create perf trace dir");
    let path = format!("{dir}/azure_{}m.csv", cfg.minutes);
    std::fs::write(&path, cfg.trace_text()).expect("write perf trace");

    let header = workloads::read_trace_header(&path).expect("trace header");
    let duration_s = cfg.minutes as f64 * 60.0;
    let host = |seed: u64| SimConfig {
        backend: BackendKind::Squeezy,
        harvest: HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: header
                .kinds
                .iter()
                .map(|&kind| Deployment {
                    kind,
                    concurrency: 8,
                    arrivals: Vec::new(),
                })
                .collect(),
            vcpus: Some(8.0),
        }],
        host_capacity: u64::MAX / 2,
        keepalive_s: 60.0,
        duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 5_000,
        record_latency_points: false,
        seed,
        trial: 0,
    };
    let cluster = ClusterConfig {
        hosts: (0..cfg.hosts)
            .map(|h| host(DetRng::new(PERF_SEED).derive(0x7A).derive(h as u64).seed()))
            .collect(),
        tenants: header
            .kinds
            .iter()
            .enumerate()
            .map(|(ti, _)| TenantTrace {
                vm: 0,
                dep: ti,
                arrivals: Vec::new(),
            })
            .collect(),
    };

    let t0 = Instant::now();
    let source = workloads::open_trace(&path, 0).expect("trace opens");
    let sim = FleetSim::with_source(
        FleetConfig::fixed(cluster, PERF_SEED),
        Box::new(RoundRobin::default()),
        Box::new(FixedFleet),
        source,
        &path,
    )
    .expect("hosts boot");
    let setup_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let out = sim.run();
    let run_s = t1.elapsed().as_secs_f64();

    // Boundedness is the whole point of this benchmark: fail loudly if
    // any accumulator ever grows with the trace again.
    assert!(
        out.latency_over_time.len() <= LATENCY_RESERVOIR_CAP,
        "fleet reservoir exceeded its cap"
    );
    let max_func_samples = out
        .hosts
        .iter()
        .flat_map(|h| h.result.per_func.values().map(|m| m.latency.count()))
        .max()
        .unwrap_or(0);
    assert!(
        max_func_samples <= LATENCY_RESERVOIR_CAP,
        "a per-function histogram exceeded its cap"
    );
    for h in &out.hosts {
        assert!(
            h.result.host_usage.points().is_empty(),
            "streamed replays must not record usage series"
        );
    }
    assert_eq!((out.lost, out.deferred), (0, 0), "unsaturated frozen fleet");

    TracePerfCell {
        hosts: cfg.hosts,
        minutes: cfg.minutes,
        invocations: out.injected,
        completed: out.completed,
        events: out.events_processed,
        peak_depth: out.peak_queue_depth,
        reservoir_len: out.latency_over_time.len(),
        max_func_samples,
        peak_rss_mib: peak_rss_mib(),
        setup_s,
        run_s,
        events_per_sec: out.events_processed as f64 / run_s,
    }
}

/// Renders the streaming-replay summary.
pub fn render_trace(c: &TracePerfCell) -> String {
    let mut t = TextTable::new(&[
        "Hosts",
        "Minutes",
        "Invocations",
        "Completed",
        "Events",
        "PeakQ",
        "Reservoir",
        "MaxFunc",
        "PeakRSS(MiB)",
        "Setup(s)",
        "Run(s)",
        "Events/s",
    ]);
    t.row(vec![
        format!("{}", c.hosts),
        format!("{}", c.minutes),
        format!("{}", c.invocations),
        format!("{}", c.completed),
        format!("{}", c.events),
        format!("{}", c.peak_depth),
        format!("{}/{}", c.reservoir_len, LATENCY_RESERVOIR_CAP),
        format!("{}/{}", c.max_func_samples, LATENCY_RESERVOIR_CAP),
        c.peak_rss_mib
            .map_or_else(|| "n/a".to_string(), |m| format!("{m:.0}")),
        format!("{:.2}", c.setup_s),
        format!("{:.2}", c.run_s),
        format!("{:.0}", c.events_per_sec),
    ]);
    let mut out = String::from(
        "Perf (trace replay): streamed multi-day fleet replay, arrivals pulled \
         lazily off disk\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Reservoir/MaxFunc are hard caps: tracked samples stay bounded no \
         matter how many invocations the trace expands to.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized pinned scenario (same construction, tiny scale).
    fn tiny() -> PerfConfig {
        PerfConfig {
            hosts: 2,
            per_host_rps: 2.0,
            duration_s: 30.0,
            tenants: 2,
        }
    }

    #[test]
    fn perf_scenario_serves_every_invocation() {
        let cell = run(&tiny());
        assert!(cell.invocations > 0);
        assert_eq!(
            cell.completed, cell.invocations,
            "an unsaturated warm cluster serves everything"
        );
        assert!(cell.events >= cell.invocations, "≥ 1 event per invocation");
        assert!(cell.peak_depth > 0);
        assert!(cell.events_per_sec > 0.0);
    }

    #[test]
    fn perf_scenario_outcome_is_deterministic() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.peak_depth, b.peak_depth);
    }

    /// A test-sized trace replay (same construction, ~20 minutes of
    /// trace at a low peak).
    fn tiny_trace() -> TracePerfConfig {
        TracePerfConfig {
            minutes: 20,
            hosts: 2,
            peak_per_minute: 120.0,
        }
    }

    #[test]
    fn trace_replay_is_bounded_and_deterministic() {
        let a = run_trace(&tiny_trace());
        let b = run_trace(&tiny_trace());
        assert!(a.invocations > 0);
        assert_eq!(a.completed, a.invocations, "unsaturated fleet serves all");
        assert_eq!(a.invocations, b.invocations);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.peak_depth, b.peak_depth);
        assert_eq!(a.reservoir_len, b.reservoir_len);
    }

    #[test]
    fn paper_trace_text_is_the_committed_sample() {
        // `repro gen-trace` writes `workloads::sample_azure_3day()`;
        // the paper-scale replay must benchmark that exact file.
        assert_eq!(
            TracePerfConfig::paper().trace_text(),
            workloads::sample_azure_3day()
        );
    }

    /// The reservoir-bound audit at full scale: a multi-day replay
    /// expanding to 2M+ invocations, every tracked-sample accumulator
    /// still under its cap and the queue high-water mark independent of
    /// trace length. The `run_trace` asserts do the enforcement; this
    /// test supplies the scale.
    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn full_scale_trace_replay_stays_bounded() {
        let cell = run_trace(&TracePerfConfig::paper());
        assert!(
            cell.invocations >= 2_000_000,
            "the 3-day trace expands to 2M+ invocations (got {})",
            cell.invocations
        );
        assert_eq!(cell.completed, cell.invocations);
        assert!(cell.reservoir_len <= LATENCY_RESERVOIR_CAP);
        assert!(cell.max_func_samples <= LATENCY_RESERVOIR_CAP);
        assert!(
            cell.peak_depth < cell.invocations as usize / 100,
            "queue tracks in-flight work, not the trace ({} vs {})",
            cell.peak_depth,
            cell.invocations
        );
    }
}
