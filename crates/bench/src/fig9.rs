//! Figure 9: CNN request latency during an HTML scale-down event on the
//! same VM. Vanilla virtio-mem's migrations run on shared vCPUs and more
//! than double CNN latency; Squeezy does not interfere.

use faas::{BackendKind, Deployment, FaasSim, SimConfig, VmSpec};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::DetRng;
use workloads::FunctionKind;

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// Total duration.
    pub duration_s: f64,
    /// The HTML burst ends here; evictions land `keepalive_s` later.
    pub html_burst_end_s: f64,
    /// Keep-alive window.
    pub keepalive_s: f64,
    /// CNN request rate during the observation window.
    pub cnn_rps: f64,
    /// Number of HTML instances created by the burst.
    pub html_instances: u32,
    /// vCPUs of the shared VM (scarce enough for contention to show).
    pub vcpus: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig9Config {
    /// Paper-shaped configuration: scale-down lands around t ≈ 125 s.
    pub fn paper() -> Self {
        Fig9Config {
            duration_s: 200.0,
            html_burst_end_s: 105.0,
            keepalive_s: 20.0,
            cnn_rps: 5.0,
            html_instances: 20,
            vcpus: 6.0,
            seed: 9,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig9Config {
            duration_s: 120.0,
            html_burst_end_s: 45.0,
            keepalive_s: 15.0,
            cnn_rps: 4.0,
            html_instances: 10,
            vcpus: 4.0,
            seed: 9,
        }
    }

    /// The second in which evictions (the scale-down) begin.
    pub fn scaledown_s(&self) -> f64 {
        self.html_burst_end_s + self.keepalive_s
    }
}

/// Per-second mean CNN latency for one backend.
#[derive(Clone, Debug)]
pub struct Fig9Series {
    /// Backend under test.
    pub backend: BackendKind,
    /// `(second, mean_latency_ms)` samples over the observation window.
    pub per_second: Vec<(f64, f64)>,
}

impl Fig9Series {
    /// Mean latency over seconds in `[from, to)`.
    pub fn window_mean(&self, from: f64, to: f64) -> f64 {
        let xs: Vec<f64> = self
            .per_second
            .iter()
            .filter(|(s, _)| *s >= from && *s < to)
            .map(|&(_, l)| l)
            .collect();
        sim_core::metrics::mean(&xs)
    }
}

/// The per-backend sweep on the engine. Both backends must see the same
/// arrival jitter (the figure is a paired comparison), so the trace
/// stream is derived from the seed alone, not the point; the output is
/// a per-second timeline, so it clamps to one trial.
struct Fig9Exp<'a> {
    cfg: &'a Fig9Config,
}

impl Experiment for Fig9Exp<'_> {
    type Point = BackendKind;
    type Output = Fig9Series;

    fn points(&self) -> Vec<BackendKind> {
        vec![BackendKind::VirtioMem, BackendKind::Squeezy]
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, &backend: &BackendKind, ctx: &mut TrialCtx) -> Fig9Series {
        // A dedicated tag separates the trace stream from the FaaS
        // sim's jitter stream (`DetRng::new(seed).derive(trial)`) —
        // without it the two noise sources would replay the same draws.
        const TRACE_STREAM: u64 = 0x9A;
        let mut rng = DetRng::new(self.cfg.seed)
            .derive(TRACE_STREAM)
            .derive(ctx.trial);
        run_one(backend, self.cfg, &mut rng)
    }
}

/// Runs the co-location experiment for both backends.
pub fn run(cfg: &Fig9Config) -> Vec<Fig9Series> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig9Config, opts: &ExpOpts) -> Vec<Fig9Series> {
    run_experiment(&Fig9Exp { cfg }, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

fn run_one(backend: BackendKind, cfg: &Fig9Config, rng: &mut DetRng) -> Fig9Series {
    // HTML: a dense burst that spins up `html_instances` and then stops.
    let mut html = Vec::new();
    let mut t = 1.0;
    while t < cfg.html_burst_end_s {
        // Keep all instances busy so none idles out early.
        for i in 0..cfg.html_instances {
            html.push(t + i as f64 * 0.01 + rng.range_f64(0.0, 0.005));
        }
        t += 1.0;
    }
    // CNN: steady load through the scale-down window.
    let mut cnn = Vec::new();
    let mut t = 20.0;
    while t < cfg.duration_s - 10.0 {
        cnn.push(t);
        t += 1.0 / cfg.cnn_rps;
    }

    let sim_cfg = SimConfig {
        backend,
        harvest: faas::HarvestConfig::default(),
        vms: vec![VmSpec {
            deployments: vec![
                Deployment {
                    kind: FunctionKind::Cnn,
                    concurrency: 8,
                    arrivals: cnn,
                },
                Deployment {
                    kind: FunctionKind::Html,
                    concurrency: cfg.html_instances,
                    arrivals: html,
                },
            ],
            vcpus: Some(cfg.vcpus),
        }],
        host_capacity: u64::MAX / 2,
        keepalive_s: cfg.keepalive_s,
        duration_s: cfg.duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: 30_000,
        // Figure 9 is a time-resolved plot: it needs the per-request
        // latency points.
        record_latency_points: true,
        seed: cfg.seed,
        trial: 0,
    };
    let result = FaasSim::new(sim_cfg).expect("boot").run();
    let m = &result.per_func[&FunctionKind::Cnn];
    let mut per_second = Vec::new();
    let mut s = 20.0;
    while s < cfg.duration_s {
        if let Some(mean) = m.mean_latency_in(s, s + 1.0) {
            per_second.push((s, mean));
        }
        s += 1.0;
    }
    Fig9Series {
        backend,
        per_second,
    }
}

/// Renders the per-second series around the scale-down plus a summary.
pub fn render(series: &[Fig9Series], cfg: &Fig9Config) -> String {
    let down = cfg.scaledown_s();
    let mut t = TextTable::new(&["Time(s)", "Virtio-mem(ms)", "Squeezy(ms)"]);
    let virtio = series
        .iter()
        .find(|s| s.backend == BackendKind::VirtioMem)
        .expect("virtio series");
    let squeezy = series
        .iter()
        .find(|s| s.backend == BackendKind::Squeezy)
        .expect("squeezy series");
    let from = (down - 15.0).max(0.0);
    let to = down + 25.0;
    let mut s = from;
    while s < to {
        let v = virtio.window_mean(s, s + 2.0);
        let q = squeezy.window_mean(s, s + 2.0);
        if v > 0.0 || q > 0.0 {
            t.row(vec![
                format!("{s:.0}"),
                format!("{v:.0}"),
                format!("{q:.0}"),
            ]);
        }
        s += 2.0;
    }
    let baseline = virtio.window_mean(from - 20.0, down - 2.0);
    let spike = peak_in(virtio, down - 2.0, to);
    let squeezy_spike = peak_in(squeezy, down - 2.0, to);
    let squeezy_base = squeezy.window_mean(from - 20.0, down - 2.0);
    let mut out =
        format!("Figure 9: CNN request latency around the HTML scale-down (t ≈ {down:.0} s)\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "virtio-mem: {baseline:.0} ms baseline -> {spike:.0} ms peak ({:.1}x slowdown; paper: >2x)\n\
         Squeezy:    {squeezy_base:.0} ms baseline -> {squeezy_spike:.0} ms peak ({:.2}x; paper: no interference)\n",
        spike / baseline.max(1.0),
        squeezy_spike / squeezy_base.max(1.0),
    ));
    out
}

/// Peak per-second latency in a window.
pub fn peak_in(series: &Fig9Series, from: f64, to: f64) -> f64 {
    series
        .per_second
        .iter()
        .filter(|(s, _)| *s >= from && *s < to)
        .map(|&(_, l)| l)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtio_scale_down_spikes_cnn_latency() {
        let cfg = Fig9Config::quick();
        let series = run(&cfg);
        let virtio = series
            .iter()
            .find(|s| s.backend == BackendKind::VirtioMem)
            .unwrap();
        let squeezy = series
            .iter()
            .find(|s| s.backend == BackendKind::Squeezy)
            .unwrap();
        let down = cfg.scaledown_s();

        let v_base = virtio.window_mean(30.0, down - 5.0);
        let v_peak = peak_in(virtio, down - 2.0, down + 20.0);
        assert!(v_base > 0.0, "baseline measured");
        assert!(
            v_peak > 1.5 * v_base,
            "virtio spike {v_peak:.0} over baseline {v_base:.0}"
        );

        let s_base = squeezy.window_mean(30.0, down - 5.0);
        let s_peak = peak_in(squeezy, down - 2.0, down + 20.0);
        assert!(
            s_peak < 1.4 * s_base.max(1.0),
            "squeezy stays flat: {s_peak:.0} vs {s_base:.0}"
        );
    }

    #[test]
    fn render_summarizes_slowdown() {
        let cfg = Fig9Config::quick();
        let s = render(&run(&cfg), &cfg);
        assert!(s.contains("Figure 9"));
        assert!(s.contains("slowdown"));
    }
}
