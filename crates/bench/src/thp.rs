//! Ablation: transparent huge pages (2 MiB) × reclamation method.
//!
//! The paper's testbed enables THP on the host (§5.1) and notes guest
//! allocation happens "in page granularity (4KiB or 2MiB)" (§7). This
//! ablation quantifies the three interactions:
//!
//! * **Cold touch** — first-touch latency of an instance footprint with
//!   4 KiB vs 2 MiB nested faults (the cold-start tax of §6.2.1 shrinks
//!   when 512 base faults collapse into one huge fault);
//! * **Reclaim** — vanilla virtio-mem must migrate huge pages whole (or
//!   split them when contiguity runs out) while Squeezy's partition
//!   unplug stays instant regardless of the backing granularity;
//! * **Contiguity** — after base-page churn ages a vanilla VM, huge
//!   faults start falling back; a freshly plugged Squeezy partition is
//!   whole-block free, so its huge faults always succeed.

use guest_mm::{GuestMmConfig, PAGES_PER_HUGE};
use mem_types::{align_up_to_block, GIB, MIB, PAGE_SIZE};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, DetRng};
use squeezy::{SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::Memhog;

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ThpConfig {
    /// Per-instance footprint (Table 1 default: 768 MiB).
    pub instance_bytes: u64,
    /// Co-resident instances in the reclaim experiment.
    pub instances: u32,
    /// Churn rounds used to age the vanilla VM for the contiguity part.
    pub aging_rounds: u32,
}

impl ThpConfig {
    /// Full-scale configuration (CNN-sized instances, 8:1 VM).
    pub fn paper() -> Self {
        ThpConfig {
            instance_bytes: 768 * MIB,
            instances: 8,
            aging_rounds: 4,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        ThpConfig {
            instance_bytes: 256 * MIB,
            instances: 4,
            aging_rounds: 2,
        }
    }
}

/// One reclaim row of the ablation.
#[derive(Clone, Copy, Debug)]
pub struct ReclaimRow {
    /// Backing granularity under test.
    pub huge: bool,
    /// Vanilla virtio-mem reclaim latency (ms).
    pub virtio_ms: f64,
    /// Whole-huge migrations performed by the vanilla path.
    pub virtio_migrated_huge: u64,
    /// Huge pages the vanilla path had to split.
    pub virtio_huge_splits: u64,
    /// Squeezy reclaim latency (ms).
    pub squeezy_ms: f64,
}

/// Full ablation results.
#[derive(Clone, Debug)]
pub struct ThpResult {
    /// First-touch latency of one instance footprint, 4 KiB faults (ms).
    pub cold_touch_4k_ms: f64,
    /// First-touch latency of one instance footprint, 2 MiB faults (ms).
    pub cold_touch_2m_ms: f64,
    /// Reclaim rows for base-page and huge-page backed instances.
    pub reclaim: Vec<ReclaimRow>,
    /// Huge fault success rate on an aged vanilla VM (0..=1).
    pub aged_success_rate: f64,
    /// Huge fault success rate on a fresh Squeezy partition (0..=1).
    pub partition_success_rate: f64,
}

/// One independent part of the ablation grid.
#[derive(Clone, Copy, Debug)]
enum ThpPart {
    /// First-touch latency with base or huge faults.
    Cold { huge: bool },
    /// Reclaim comparison over base- or huge-backed instances.
    Reclaim { huge: bool },
    /// Huge-fault success on an aged VM vs a fresh partition.
    Contiguity,
}

/// The heterogeneous output of one part.
enum ThpPartOut {
    ColdMs { huge: bool, ms: f64 },
    Reclaim(ReclaimRow),
    Contiguity { aged: f64, partition: f64 },
}

/// The three-part ablation as a five-point sweep on the engine (cold
/// touch and reclaim split per backing); the aging shuffle draws from
/// the trial stream.
struct ThpExp<'a> {
    cfg: &'a ThpConfig,
}

impl Experiment for ThpExp<'_> {
    type Point = ThpPart;
    type Output = ThpPartOut;

    fn points(&self) -> Vec<ThpPart> {
        vec![
            ThpPart::Cold { huge: false },
            ThpPart::Cold { huge: true },
            ThpPart::Reclaim { huge: false },
            ThpPart::Reclaim { huge: true },
            ThpPart::Contiguity,
        ]
    }

    fn seed(&self) -> u64 {
        0x7867
    }

    fn run_trial(&self, &part: &ThpPart, ctx: &mut TrialCtx) -> ThpPartOut {
        let cost = CostModel::default();
        match part {
            ThpPart::Cold { huge } => ThpPartOut::ColdMs {
                huge,
                ms: cold_touch(self.cfg, huge, &cost),
            },
            ThpPart::Reclaim { huge } => ThpPartOut::Reclaim(reclaim_row(self.cfg, huge, &cost)),
            ThpPart::Contiguity => {
                let (aged, partition) = contiguity(self.cfg, &cost, &mut ctx.rng);
                ThpPartOut::Contiguity { aged, partition }
            }
        }
    }
}

/// Runs all three parts of the ablation.
pub fn run(cfg: &ThpConfig) -> ThpResult {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &ThpConfig, opts: &ExpOpts) -> ThpResult {
    let parts = run_experiment(&ThpExp { cfg }, opts.effective_jobs());
    let mut result = ThpResult {
        cold_touch_4k_ms: 0.0,
        cold_touch_2m_ms: 0.0,
        reclaim: Vec::new(),
        aged_success_rate: 0.0,
        partition_success_rate: 0.0,
    };
    for mut trials in parts {
        match trials.remove(0) {
            ThpPartOut::ColdMs { huge: false, ms } => result.cold_touch_4k_ms = ms,
            ThpPartOut::ColdMs { huge: true, ms } => result.cold_touch_2m_ms = ms,
            ThpPartOut::Reclaim(row) => result.reclaim.push(row),
            ThpPartOut::Contiguity { aged, partition } => {
                result.aged_success_rate = aged;
                result.partition_success_rate = partition;
            }
        }
    }
    result
}

/// Part 1: first-touch latency of a full instance footprint.
fn cold_touch(cfg: &ThpConfig, huge: bool, cost: &CostModel) -> f64 {
    let (mut vm, mut host) = plugged_vm(cfg.instance_bytes, cost);
    let hog = if huge {
        Memhog::spawn_huge(&mut vm, cfg.instance_bytes)
    } else {
        Memhog::spawn(&mut vm, cfg.instance_bytes)
    };
    let charge = hog.warm_up(&mut vm, &mut host, cost).expect("fits");
    charge.latency.as_millis_f64()
}

/// Part 2: kill one of `instances` co-resident hogs and reclaim its
/// memory, for both backings and both methods.
fn reclaim_row(cfg: &ThpConfig, huge: bool, cost: &CostModel) -> ReclaimRow {
    // Vanilla: all instances share ZONE_MOVABLE; warm up round-robin so
    // footprints interleave at chunk granularity.
    let part_bytes = align_up_to_block(cfg.instance_bytes);
    let hotplug = part_bytes * cfg.instances as u64;
    let (mut vm, mut host) = plugged_vm(hotplug, cost);
    vm.guest.unplug_aware_zeroing_skip = false;
    let mut hogs = Vec::new();
    for _ in 0..cfg.instances {
        hogs.push(if huge {
            Memhog::spawn_huge(&mut vm, cfg.instance_bytes)
        } else {
            Memhog::spawn(&mut vm, cfg.instance_bytes)
        });
    }
    fill_round_robin(&mut vm, &mut host, &hogs, cost);
    hogs[0].kill(&mut vm).expect("alive");
    let before = *vm.guest.stats();
    let report = vm
        .unplug(&mut host, part_bytes, None, cost)
        .expect("reclaimable");
    let virtio_ms = report.latency().as_millis_f64();
    let after = *vm.guest.stats();

    // Squeezy: identical layout but partitioned; unplug is instant.
    let (mut svm, mut shost) = fresh_vm(hotplug, cost);
    let mut sq = SqueezyManager::install(
        &mut svm,
        SqueezyConfig {
            partition_bytes: part_bytes,
            shared_bytes: 0,
            concurrency: cfg.instances,
        },
        cost,
    )
    .expect("layout fits");
    let mut shogs = Vec::new();
    for _ in 0..cfg.instances {
        let hog = if huge {
            Memhog::spawn_huge(&mut svm, cfg.instance_bytes)
        } else {
            Memhog::spawn(&mut svm, cfg.instance_bytes)
        };
        sq.plug_partition(&mut svm, cost).expect("partition");
        sq.attach(&mut svm, hog.pid).expect("attach");
        shogs.push(hog);
    }
    fill_round_robin(&mut svm, &mut shost, &shogs, cost);
    shogs[0].kill(&mut svm).expect("alive");
    sq.detach(shogs[0].pid).expect("attached");
    let (_, sreport) = sq
        .unplug_partition(&mut svm, &mut shost, cost)
        .expect("free partition");

    ReclaimRow {
        huge,
        virtio_ms,
        virtio_migrated_huge: after.huge_migrated - before.huge_migrated,
        virtio_huge_splits: after.huge_splits - before.huge_splits,
        squeezy_ms: sreport.latency().as_millis_f64(),
    }
}

/// Part 3: huge fault success after aging vs on a fresh partition.
fn contiguity(cfg: &ThpConfig, cost: &CostModel, rng: &mut DetRng) -> (f64, f64) {
    // Age a vanilla VM: fill the whole movable zone with base pages,
    // then punch single-page holes at random so free runs shrink below
    // 2 MiB — the allocator-induced fragmentation of §2.2.
    let hotplug = align_up_to_block(cfg.instance_bytes) * 2;
    let (mut vm, mut host) = plugged_vm(hotplug, cost);
    let pid = vm
        .guest
        .spawn_process(guest_mm::AllocPolicy::PinnedZone(guest_mm::ZONE_MOVABLE));
    let zone_pages = vm.guest.zone(guest_mm::ZONE_MOVABLE).free_pages;
    vm.touch_anon(&mut host, pid, zone_pages, cost)
        .expect("fits");
    let mut freed = 0u64;
    for _ in 0..cfg.aging_rounds.max(1) {
        let held: Vec<_> = vm.guest.process(pid).unwrap().pages.clone();
        for g in held {
            // Free a sixth of the resident pages per round, scattered.
            if rng.range(0, 6) == 0 {
                vm.guest.free_anon_page(pid, g).expect("owned");
                freed += 1;
            }
        }
    }
    // Probe for half the freed memory as huge pages: plenty of free
    // pages exist, but almost none of it is 2 MiB-contiguous.
    let want_huge = (freed / 2) / PAGES_PER_HUGE;
    let prober = vm
        .guest
        .spawn_process(guest_mm::AllocPolicy::PinnedZone(guest_mm::ZONE_MOVABLE));
    let aged_out = vm.guest.fault_anon_huge(prober, want_huge).expect("fits");
    let aged_rate = aged_out.huge_success_rate().unwrap_or(0.0);

    // Fresh Squeezy partition: plug and probe.
    let (mut svm, _shost) = fresh_vm(hotplug, cost);
    let mut sq = SqueezyManager::install(
        &mut svm,
        SqueezyConfig {
            partition_bytes: align_up_to_block(cfg.instance_bytes),
            shared_bytes: 0,
            concurrency: 2,
        },
        cost,
    )
    .expect("layout fits");
    sq.plug_partition(&mut svm, cost).expect("partition");
    let sprober = svm
        .guest
        .spawn_process(guest_mm::AllocPolicy::MovableDefault);
    sq.attach(&mut svm, sprober).expect("attach");
    let part_out = svm.guest.fault_anon_huge(sprober, want_huge).expect("fits");
    (aged_rate, part_out.huge_success_rate().unwrap_or(0.0))
}

/// Boots a VM with `hotplug` bytes of pluggable memory and plugs it all.
fn plugged_vm(hotplug: u64, cost: &CostModel) -> (Vm, HostMemory) {
    let (mut vm, host) = fresh_vm(hotplug, cost);
    vm.plug(align_up_to_block(hotplug), cost).expect("plugs");
    (vm, host)
}

/// Boots a VM with `hotplug` bytes of pluggable memory, nothing plugged.
fn fresh_vm(hotplug: u64, _cost: &CostModel) -> (Vm, HostMemory) {
    let hotplug = align_up_to_block(hotplug);
    let mut host = HostMemory::new(hotplug + 8 * GIB);
    let vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: hotplug,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 8.0,
        },
        &mut host,
    )
    .expect("host fits");
    (vm, host)
}

/// Warms hogs up round-robin in 16 MiB chunks (both backings).
fn fill_round_robin(vm: &mut Vm, host: &mut HostMemory, hogs: &[Memhog], cost: &CostModel) {
    let mut faulted = vec![0u64; hogs.len()];
    loop {
        let mut progressed = false;
        for (i, hog) in hogs.iter().enumerate() {
            let left = hog.pages - faulted[i];
            if left == 0 {
                continue;
            }
            let n = left.min(16 * MIB / PAGE_SIZE);
            if hog.huge {
                vm.touch_anon_huge(host, hog.pid, n / PAGES_PER_HUGE, cost)
                    .expect("fits");
            } else {
                vm.touch_anon(host, hog.pid, n, cost).expect("fits");
            }
            faulted[i] += n;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}

/// Renders the ablation as text tables.
pub fn render(r: &ThpResult) -> String {
    let mut out = String::from("Ablation: transparent huge pages (2 MiB)\n\n");
    out.push_str(&format!(
        "Cold touch of one instance footprint: 4 KiB faults {:.1} ms, \
         2 MiB faults {:.1} ms ({:.1}x faster)\n\n",
        r.cold_touch_4k_ms,
        r.cold_touch_2m_ms,
        r.cold_touch_4k_ms / r.cold_touch_2m_ms.max(1e-9),
    ));
    let mut t = TextTable::new(&[
        "Backing",
        "Virtio-mem(ms)",
        "HugeMoves",
        "HugeSplits",
        "Squeezy(ms)",
    ]);
    for row in &r.reclaim {
        t.row(vec![
            if row.huge { "2MiB" } else { "4KiB" }.to_string(),
            format!("{:.0}", row.virtio_ms),
            format!("{}", row.virtio_migrated_huge),
            format!("{}", row.virtio_huge_splits),
            format!("{:.0}", row.squeezy_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nHuge fault success: aged vanilla VM {:.0}%, fresh Squeezy partition {:.0}%\n",
        r.aged_success_rate * 100.0,
        r.partition_success_rate * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_cold_touch_is_faster() {
        let r = run(&ThpConfig::quick());
        assert!(
            r.cold_touch_2m_ms * 3.0 < r.cold_touch_4k_ms,
            "2M {} vs 4K {}",
            r.cold_touch_2m_ms,
            r.cold_touch_4k_ms
        );
    }

    #[test]
    fn squeezy_reclaim_indifferent_to_backing() {
        let r = run(&ThpConfig::quick());
        let base = &r.reclaim[0];
        let huge = &r.reclaim[1];
        // Squeezy: instant either way.
        let ratio = huge.squeezy_ms / base.squeezy_ms.max(1e-9);
        assert!((0.8..1.2).contains(&ratio), "squeezy varies: {ratio}");
        // Vanilla pays migrations for both backings; huge moves show up.
        assert!(base.virtio_ms > base.squeezy_ms);
        assert!(huge.virtio_ms > huge.squeezy_ms);
        assert!(huge.virtio_migrated_huge > 0 || huge.virtio_huge_splits > 0);
        assert_eq!(base.virtio_migrated_huge, 0);
    }

    #[test]
    fn partition_preserves_contiguity() {
        let r = run(&ThpConfig::quick());
        assert_eq!(r.partition_success_rate, 1.0, "fresh partition is whole");
        assert!(
            r.aged_success_rate < 0.7,
            "aged VM should fragment: {}",
            r.aged_success_rate
        );
    }

    #[test]
    fn render_mentions_all_parts() {
        let r = run(&ThpConfig::quick());
        let s = render(&r);
        assert!(s.contains("Cold touch"));
        assert!(s.contains("Huge fault success"));
        assert!(s.contains("2MiB"));
    }
}
