//! Regenerates every table and figure of the paper as text output, and
//! runs declarative scenario specs.
//!
//! Usage:
//!
//! ```text
//! repro [all|table1|fig1|...|fig11|thp|soft|fpr|temporal|hybrid|cluster|fleet]
//!       [--quick] [--jobs N] [--trials N] [--json <path>]
//! repro perf [--trace] [--quick] [--json <path>]
//! repro run <spec.scn>... [--compare] [--quick] [--jobs N] [--trials N] [--json <path>]
//! repro gen-trace
//! repro scenarios
//! ```
//!
//! * `repro run` — execute scenario spec files (`faas::SweepSpec`
//!   format; see `examples/scenarios/`) with one report section per
//!   spec. Specs are parsed and validated up front: a bad file fails
//!   before anything runs. A spec may sweep axes
//!   (`hosts = 4..64 step 2x`, `router = least-loaded, power-of-two`)
//!   into a grid of cells, and may declare `expect.*` gates
//!   (`expect.p99_ms_max = 250`) — any failed gate makes the whole run
//!   exit 1 after the per-cell verdict table prints.
//! * `repro run --compare a.scn b.scn` — run exactly two single-cell
//!   specs and append a significance-aware diff table (Welch's t-test
//!   plus a seeded bootstrap CI per metric; see `faas::scenario`).
//! * `repro perf --trace` — the streaming-replay benchmark: a frozen
//!   fleet pulls a multi-day azure-minute trace lazily off disk and the
//!   run asserts every tracked-sample accumulator stays under its cap.
//! * `repro gen-trace` — (re)write the committed example traces under
//!   `examples/traces/` from their pinned generators, byte-identically.
//! * `repro scenarios` — list the scenario registry (workloads,
//!   topologies, backends, routers, policies, spec keys).
//! * `--jobs N` — shard each experiment grid over `N` worker threads
//!   (default: all cores). Output is byte-identical for every value of
//!   `N`; only wall time changes.
//! * `--trials N` — repeat stochastic experiments `N` times on derived
//!   RNG streams and report trial means (default: 1).
//! * `--json <path>` — additionally write a machine-readable summary
//!   (per-section wall time + output digest) for bench-trajectory
//!   tracking and `--jobs` byte-identity checks.

use std::time::Instant;

use std::sync::{Arc, Mutex};

use faas::{compare_results, CompareReport, ExpectVerdict, GridOutcome, SweepSpec};
use sim_core::experiment::{run_experiment, Experiment, TrialCtx};
use sim_core::{fnv1a, ExpOpts};
use squeezy_bench as bench;

/// Every target the CLI accepts, in help order. Unknown targets are
/// rejected at parse time against this list.
const TARGETS: [&str; 22] = [
    "all",
    "table1",
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "thp",
    "soft",
    "fpr",
    "temporal",
    "hybrid",
    "cluster",
    "fleet",
    "perf",
    "run",
    "gen-trace",
    "scenarios",
];

struct Args {
    what: String,
    /// Spec files following the `run` target.
    files: Vec<String>,
    quick: bool,
    /// `perf --trace`: run the streaming-replay benchmark instead of
    /// the drumbeat cluster.
    trace: bool,
    /// `run --compare`: diff exactly two single-cell specs with
    /// significance tests.
    compare: bool,
    opts: ExpOpts,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut what: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut quick = false;
    let mut trace = false;
    let mut compare = false;
    let mut opts = ExpOpts::auto();
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--compare" => compare = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| die("--jobs needs a value"));
                opts.jobs = v.parse().unwrap_or_else(|_| die("--jobs expects a number"));
            }
            "--trials" => {
                let v = it.next().unwrap_or_else(|| die("--trials needs a value"));
                let t: u32 = v
                    .parse()
                    .unwrap_or_else(|_| die("--trials expects a number"));
                opts.trials = t.max(1);
            }
            "--json" => {
                json = Some(it.next().unwrap_or_else(|| die("--json needs a path")));
            }
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            positional => match &what {
                // Extra positionals are spec files — but only the
                // `run` target takes them.
                Some(first) if first == "run" => files.push(positional.to_string()),
                Some(first) => die(&format!(
                    "multiple targets ({first:?} and {positional:?}); pass one"
                )),
                None if TARGETS.contains(&positional) => what = Some(positional.to_string()),
                // A typo'd target dies here, at parse time, with the
                // full valid list — not after the run completes.
                None => die(&format!(
                    "unknown target {positional:?} (valid targets: {})",
                    TARGETS.join(", ")
                )),
            },
        }
    }
    let what = what.unwrap_or_else(|| "all".to_string());
    if what == "run" && files.is_empty() {
        die("run needs at least one scenario spec file (see `repro scenarios`)");
    }
    if trace && what != "perf" {
        die("--trace only applies to the perf target");
    }
    if compare && what != "run" {
        die("--compare only applies to the run target");
    }
    if compare && files.len() != 2 {
        die("--compare needs exactly two scenario spec files (baseline, candidate)");
    }
    Args {
        what,
        files,
        quick,
        trace,
        compare,
        opts,
        json,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// One rendered section and its cost. The `fnv1a` digest over the
/// rendered text makes `--jobs` byte-identity checkable from the JSON
/// alone.
struct Section {
    name: String,
    wall_s: f64,
    bytes: usize,
    digest: u64,
    text: String,
}

/// A renderable section of the report.
type Renderer = Box<dyn Fn() -> String + Sync>;

/// The report itself is an experiment: each section is a sweep point,
/// so `--jobs` pipelines whole figures against each other (a section
/// with a serial phase, like Figure 10's abundant baseline, no longer
/// blocks the machine) while the ordered reduction prints them in
/// canonical order.
struct Report {
    sections: Vec<(String, Renderer)>,
}

impl Experiment for Report {
    type Point = usize;
    type Output = Section;

    fn points(&self) -> Vec<usize> {
        (0..self.sections.len()).collect()
    }

    fn run_trial(&self, &i: &usize, _ctx: &mut TrialCtx) -> Section {
        let (name, render) = &self.sections[i];
        let t = Instant::now();
        let text = render();
        // Progress goes to stderr in completion order; stdout stays
        // buffered and byte-identical in canonical order.
        eprintln!("[repro] {name} done in {:.1}s", t.elapsed().as_secs_f64());
        Section {
            name: name.clone(),
            wall_s: t.elapsed().as_secs_f64(),
            digest: fnv1a(&text),
            bytes: text.len(),
            text,
        }
    }
}

/// Loads, optionally quick-scales, and validates every spec file; any
/// bad file dies before the first simulation starts. Specs may be
/// plain scenarios or sweep grids — `SweepSpec::parse` is a strict
/// superset of the scalar format.
fn load_specs(files: &[String], quick: bool) -> Vec<(String, SweepSpec)> {
    files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
            let spec = SweepSpec::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            (path.clone(), if quick { spec.quick() } else { spec })
        })
        .collect()
}

/// (Re)writes the committed example traces from their pinned in-crate
/// generators. Paths are anchored on the crate manifest, so this lands
/// in `examples/traces/` whatever the working directory; the output is
/// byte-deterministic and a bench test pins the committed files to it.
fn gen_traces() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/traces");
    std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir}: {e}")));
    let files = [
        ("azure_3day.csv", workloads::sample_azure_3day()),
        ("opendc_sample.csv", workloads::sample_opendc()),
    ];
    for (name, text) in files {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, &text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!(
            "wrote {name} ({} bytes, fnv1a {:016x})",
            text.len(),
            fnv1a(&text)
        );
    }
}

fn main() {
    let args = parse_args();
    if args.what == "scenarios" {
        print!("{}", faas::scenario::registry_help());
        return;
    }
    if args.what == "gen-trace" {
        gen_traces();
        return;
    }
    let all = args.what == "all";
    let quick = args.quick;
    let opts = args.opts;

    let mut report = Report {
        sections: Vec::new(),
    };
    let mut add = |name: &str, enabled: bool, render: Renderer| {
        if enabled {
            report.sections.push((name.to_string(), render));
        }
    };

    let specs = load_specs(&args.files, quick);
    if args.compare {
        for (path, spec) in &specs {
            let cells = spec.cells().len();
            if cells != 1 {
                die(&format!(
                    "--compare needs single-cell specs; {path} expands to {cells} cells \
                     (drop the sweep axes)"
                ));
            }
        }
    }
    // Grid outcomes (per-cell results, gate verdicts) are captured out
    // of the render closures for the compare block, the JSON summary
    // and the gate exit code.
    let grids: Arc<Mutex<Vec<Option<GridOutcome>>>> =
        Arc::new(Mutex::new(specs.iter().map(|_| None).collect()));
    for (i, (path, spec)) in specs.into_iter().enumerate() {
        let spec_opts = opts;
        let grids = grids.clone();
        add(
            &path.clone(),
            true,
            Box::new(move || {
                let outcome = spec
                    .run(&spec_opts)
                    .unwrap_or_else(|e| die(&format!("{path}: {e}")));
                let text = outcome.render();
                grids.lock().expect("grid lock")[i] = Some(outcome);
                text
            }),
        );
    }

    add(
        "Table 1",
        all || args.what == "table1",
        Box::new(bench::table1::render),
    );
    add(
        "Figure 1",
        all || args.what == "fig1",
        Box::new(move || {
            let cfg = if quick {
                bench::fig1::Fig1Config::quick()
            } else {
                bench::fig1::Fig1Config::paper()
            };
            bench::fig1::render(&bench::fig1::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 2",
        all || args.what == "fig2",
        Box::new(move || {
            let cfg = if quick {
                bench::fig2::Fig2Config::quick()
            } else {
                bench::fig2::Fig2Config::paper()
            };
            bench::fig2::render(&bench::fig2::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 5",
        all || args.what == "fig5",
        Box::new(move || {
            let cfg = if quick {
                bench::fig5::Fig5Config::quick()
            } else {
                bench::fig5::Fig5Config::paper()
            };
            bench::fig5::render(&bench::fig5::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 6",
        all || args.what == "fig6",
        Box::new(move || {
            let cfg = if quick {
                bench::fig6::Fig6Config::quick()
            } else {
                bench::fig6::Fig6Config::paper()
            };
            bench::fig6::render(&bench::fig6::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 7",
        all || args.what == "fig7",
        Box::new(move || {
            let cfg = if quick {
                bench::fig7::Fig7Config::quick()
            } else {
                bench::fig7::Fig7Config::paper()
            };
            bench::fig7::render(&bench::fig7::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 8",
        all || args.what == "fig8",
        Box::new(move || {
            let cfg = if quick {
                bench::fig8::Fig8Config::quick()
            } else {
                bench::fig8::Fig8Config::paper()
            };
            bench::fig8::render(&bench::fig8::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 9",
        all || args.what == "fig9",
        Box::new(move || {
            let cfg = if quick {
                bench::fig9::Fig9Config::quick()
            } else {
                bench::fig9::Fig9Config::paper()
            };
            bench::fig9::render(&bench::fig9::run_with(&cfg, &opts), &cfg)
        }),
    );
    add(
        "Figure 10",
        all || args.what == "fig10",
        Box::new(move || {
            let cfg = if quick {
                bench::fig10::Fig10Config::quick()
            } else {
                bench::fig10::Fig10Config::paper()
            };
            bench::fig10::render(&bench::fig10::run_with(&cfg, &opts))
        }),
    );
    add(
        "Figure 11",
        all || args.what == "fig11",
        Box::new(move || bench::fig11::render(&bench::fig11::run_with(&opts))),
    );
    add(
        "Ablation: THP",
        all || args.what == "thp",
        Box::new(move || {
            let cfg = if quick {
                bench::thp::ThpConfig::quick()
            } else {
                bench::thp::ThpConfig::paper()
            };
            bench::thp::render(&bench::thp::run_with(&cfg, &opts))
        }),
    );
    add(
        "Ablation: soft memory",
        all || args.what == "soft",
        Box::new(move || bench::soft::render(&bench::soft::run_with(&opts))),
    );
    add(
        "Ablation: free page reporting",
        all || args.what == "fpr",
        Box::new(move || {
            let cfg = if quick {
                bench::fpr::FprConfig::quick()
            } else {
                bench::fpr::FprConfig::paper()
            };
            bench::fpr::render(&bench::fpr::run_with(&cfg, &opts))
        }),
    );
    add(
        "Ablation: temporal segregation",
        all || args.what == "temporal",
        Box::new(move || bench::temporal::render(&bench::temporal::run_with(&opts))),
    );
    add(
        "Cluster",
        all || args.what == "cluster",
        Box::new(move || {
            let cfg = if quick {
                bench::cluster::ClusterBenchConfig::quick()
            } else {
                bench::cluster::ClusterBenchConfig::paper()
            };
            bench::cluster::render(&bench::cluster::run_with(&cfg, &opts))
        }),
    );
    add(
        "Fleet",
        all || args.what == "fleet",
        Box::new(move || {
            let cfg = if quick {
                bench::fleet::FleetBenchConfig::quick()
            } else {
                bench::fleet::FleetBenchConfig::paper()
            };
            bench::fleet::render(&bench::fleet::run_with(&cfg, &opts))
        }),
    );
    // The perf target is wall-time-dependent by design (events/sec),
    // so it is NOT part of `all` — the `all` report stays byte-stable
    // across machines. The cell is captured for the JSON summary.
    let perf_cell: std::sync::Arc<std::sync::Mutex<Option<bench::perf::PerfCell>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    {
        let perf_cell = perf_cell.clone();
        add(
            "Perf",
            args.what == "perf" && !args.trace,
            Box::new(move || {
                let cfg = if quick {
                    bench::perf::PerfConfig::quick()
                } else {
                    bench::perf::PerfConfig::paper()
                };
                let cell = bench::perf::run(&cfg);
                let text = bench::perf::render(&cell);
                *perf_cell.lock().expect("perf cell lock") = Some(cell);
                text
            }),
        );
    }
    // The streaming-replay variant (`perf --trace`): wall-time numbers
    // vary by machine like the drumbeat benchmark, and the cell lands
    // in the JSON summary the same way.
    let trace_cell: std::sync::Arc<std::sync::Mutex<Option<bench::perf::TracePerfCell>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    {
        let trace_cell = trace_cell.clone();
        add(
            "Perf (trace replay)",
            args.what == "perf" && args.trace,
            Box::new(move || {
                let cfg = if quick {
                    bench::perf::TracePerfConfig::quick()
                } else {
                    bench::perf::TracePerfConfig::paper()
                };
                let cell = bench::perf::run_trace(&cfg);
                let text = bench::perf::render_trace(&cell);
                *trace_cell.lock().expect("trace cell lock") = Some(cell);
                text
            }),
        );
    }
    add(
        "Ablation: hybrid scaling",
        all || args.what == "hybrid",
        Box::new(move || {
            let cfg = if quick {
                bench::hybrid::HybridConfig::quick()
            } else {
                bench::hybrid::HybridConfig::paper()
            };
            bench::hybrid::render(&cfg, &bench::hybrid::run_with(&cfg, &opts))
        }),
    );

    // Parse-time target validation means every valid invocation has
    // sections; this is a belt-and-braces guard for new targets wired
    // into TARGETS but not into the section list.
    if report.sections.is_empty() {
        die(&format!("target {:?} produced no sections", args.what));
    }

    let t0 = Instant::now();
    // The outer section level is capped at 4 workers: only one section
    // (Figure 10) is long enough to need overlap, and an uncapped outer
    // level would multiply with each section's inner workers into
    // jobs^2 busy threads on big machines.
    let sections: Vec<Section> = run_experiment(&report, opts.effective_jobs().min(4))
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect();
    for sec in &sections {
        println!("{}", "=".repeat(72));
        println!("== {}", sec.name);
        println!("{}", "=".repeat(72));
        println!("{}", sec.text);
    }
    let grids: Vec<Option<GridOutcome>> = std::mem::take(&mut *grids.lock().expect("grid lock"));
    let compare = args.compare.then(|| {
        // Validated at parse time: exactly two single-cell specs, and
        // every run section stores its outcome before rendering.
        let a = grids[0].as_ref().expect("run section stored outcome");
        let b = grids[1].as_ref().expect("run section stored outcome");
        let report = compare_results(&args.files[0], &a.cells[0].1, &args.files[1], &b.cells[0].1);
        println!("{}", "=".repeat(72));
        println!("== Compare");
        println!("{}", "=".repeat(72));
        println!("{}", report.render());
        report
    });
    let total_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[repro] done in {total_s:.1}s (jobs={}, trials={})",
        opts.effective_jobs(),
        opts.trials
    );

    let verdicts: Vec<&ExpectVerdict> = grids
        .iter()
        .flatten()
        .flat_map(|g| g.verdicts.iter())
        .collect();
    if let Some(path) = args.json {
        let perf = perf_cell.lock().expect("perf cell lock");
        let trace = trace_cell.lock().expect("trace cell lock");
        let json = to_json(
            &sections,
            total_s,
            quick,
            &opts,
            perf.as_ref(),
            trace.as_ref(),
            &verdicts,
            compare.as_ref(),
        );
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("[repro] wrote {path}");
    }
    // Behavioral gates make the process fail *after* the full report
    // and JSON land — exit 1 (distinct from usage errors' exit 2).
    let failed = verdicts.iter().filter(|v| !v.pass).count();
    if failed > 0 {
        eprintln!("[repro] {failed} expectation gate(s) FAILED — see verdict table above");
        std::process::exit(1);
    }
}

/// Minimal JSON string escaping: section names are figure titles or
/// user-supplied spec paths, so quotes, backslashes and control bytes
/// must not corrupt the summary.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `null` for non-finite values — bare JSON numbers cannot spell NaN
/// or infinity.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serializes the run summary (no external crates: the schema is flat
/// and the only free-form strings — section names, cell labels — are
/// escaped).
#[allow(clippy::too_many_arguments)]
fn to_json(
    sections: &[Section],
    total_s: f64,
    quick: bool,
    opts: &ExpOpts,
    perf: Option<&bench::perf::PerfCell>,
    perf_trace: Option<&bench::perf::TracePerfCell>,
    verdicts: &[&ExpectVerdict],
    compare: Option<&CompareReport>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"suite\": \"squeezy-repro\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"jobs\": {},\n", opts.effective_jobs()));
    s.push_str(&format!("  \"trials\": {},\n", opts.trials));
    s.push_str(&format!("  \"total_wall_s\": {total_s:.3},\n"));
    if let Some(p) = perf {
        s.push_str(&format!(
            "  \"perf\": {{\"hosts\": {}, \"invocations\": {}, \"completed\": {}, \
             \"events_processed\": {}, \"peak_queue_depth\": {}, \"setup_wall_s\": {:.3}, \
             \"run_wall_s\": {:.3}, \"events_per_sec\": {:.0}}},\n",
            p.hosts,
            p.invocations,
            p.completed,
            p.events,
            p.peak_depth,
            p.setup_s,
            p.run_s,
            p.events_per_sec
        ));
    }
    if let Some(p) = perf_trace {
        s.push_str(&format!(
            "  \"perf_trace\": {{\"hosts\": {}, \"minutes\": {}, \"invocations\": {}, \
             \"completed\": {}, \"events_processed\": {}, \"peak_queue_depth\": {}, \
             \"reservoir_len\": {}, \"max_func_samples\": {}, \"peak_rss_mib\": {}, \
             \"setup_wall_s\": {:.3}, \"run_wall_s\": {:.3}, \"events_per_sec\": {:.0}}},\n",
            p.hosts,
            p.minutes,
            p.invocations,
            p.completed,
            p.events,
            p.peak_depth,
            p.reservoir_len,
            p.max_func_samples,
            p.peak_rss_mib
                .map_or_else(|| "null".to_string(), |m| format!("{m:.1}")),
            p.setup_s,
            p.run_s,
            p.events_per_sec
        ));
    }
    if !verdicts.is_empty() {
        s.push_str("  \"expectations\": [\n");
        for (i, v) in verdicts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"cell\": \"{}\", \"gate\": \"{}\", \"limit\": {}, \"actual\": {}, \
                 \"pass\": {}}}{}\n",
                json_escape(&v.cell),
                v.kind.key(),
                json_f64(v.limit),
                json_f64(v.actual),
                v.pass,
                if i + 1 < verdicts.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
    }
    if let Some(c) = compare {
        s.push_str(&format!(
            "  \"compare\": {{\"a\": \"{}\", \"b\": \"{}\", \"alpha\": {}, \"rows\": [\n",
            json_escape(&c.label_a),
            json_escape(&c.label_b),
            faas::scenario::ALPHA
        ));
        let n: usize = c.rows.iter().map(|(_, diffs)| diffs.len()).sum();
        let mut i = 0;
        for (backend, diffs) in &c.rows {
            for d in diffs {
                i += 1;
                s.push_str(&format!(
                    "    {{\"backend\": \"{}\", \"metric\": \"{}\", \"mean_a\": {}, \
                     \"mean_b\": {}, \"diff\": {}, \"p\": {}, \"significant\": {}, \
                     \"verdict\": \"{}\"}}{}\n",
                    backend.key(),
                    d.metric,
                    json_f64(d.mean_a),
                    json_f64(d.mean_b),
                    json_f64(d.diff()),
                    d.welch
                        .map(|w| json_f64(w.p))
                        .unwrap_or_else(|| "null".to_string()),
                    d.significant(),
                    d.verdict(),
                    if i < n { "," } else { "" }
                ));
            }
        }
        s.push_str("  ]},\n");
    }
    s.push_str("  \"sections\": [\n");
    for (i, sec) in sections.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"bytes\": {}, \"fnv1a\": \"{:016x}\"}}{}\n",
            json_escape(&sec.name),
            sec.wall_s,
            sec.bytes,
            sec.digest,
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
