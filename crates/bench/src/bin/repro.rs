//! Regenerates every table and figure of the paper as text output.
//!
//! Usage: `repro [all|table1|fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|thp] [--quick]`

use squeezy_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let all = what == "all";

    let t0 = std::time::Instant::now();
    if all || what == "table1" {
        section("Table 1");
        println!("{}", bench::table1::render());
    }
    if all || what == "fig1" {
        section("Figure 1");
        let cfg = if quick {
            bench::fig1::Fig1Config::quick()
        } else {
            bench::fig1::Fig1Config::paper()
        };
        println!("{}", bench::fig1::render(&bench::fig1::run(&cfg)));
    }
    if all || what == "fig2" {
        section("Figure 2");
        let cfg = if quick {
            bench::fig2::Fig2Config::quick()
        } else {
            bench::fig2::Fig2Config::paper()
        };
        println!("{}", bench::fig2::render(&bench::fig2::run(&cfg)));
    }
    if all || what == "fig5" {
        section("Figure 5");
        let cfg = if quick {
            bench::fig5::Fig5Config::quick()
        } else {
            bench::fig5::Fig5Config::paper()
        };
        println!("{}", bench::fig5::render(&bench::fig5::run(&cfg)));
    }
    if all || what == "fig6" {
        section("Figure 6");
        let cfg = if quick {
            bench::fig6::Fig6Config::quick()
        } else {
            bench::fig6::Fig6Config::paper()
        };
        println!("{}", bench::fig6::render(&bench::fig6::run(&cfg)));
    }
    if all || what == "fig7" {
        section("Figure 7");
        let cfg = if quick {
            bench::fig7::Fig7Config::quick()
        } else {
            bench::fig7::Fig7Config::paper()
        };
        println!("{}", bench::fig7::render(&bench::fig7::run(&cfg)));
    }
    if all || what == "fig8" {
        section("Figure 8");
        let cfg = if quick {
            bench::fig8::Fig8Config::quick()
        } else {
            bench::fig8::Fig8Config::paper()
        };
        println!("{}", bench::fig8::render(&bench::fig8::run(&cfg)));
    }
    if all || what == "fig9" {
        section("Figure 9");
        let cfg = if quick {
            bench::fig9::Fig9Config::quick()
        } else {
            bench::fig9::Fig9Config::paper()
        };
        println!("{}", bench::fig9::render(&bench::fig9::run(&cfg), &cfg));
    }
    if all || what == "fig10" {
        section("Figure 10");
        let cfg = if quick {
            bench::fig10::Fig10Config::quick()
        } else {
            bench::fig10::Fig10Config::paper()
        };
        println!("{}", bench::fig10::render(&bench::fig10::run(&cfg)));
    }
    if all || what == "fig11" {
        section("Figure 11");
        println!("{}", bench::fig11::render(&bench::fig11::run()));
    }
    if all || what == "thp" {
        section("Ablation: THP");
        let cfg = if quick {
            bench::thp::ThpConfig::quick()
        } else {
            bench::thp::ThpConfig::paper()
        };
        println!("{}", bench::thp::render(&bench::thp::run(&cfg)));
    }
    if all || what == "soft" {
        section("Ablation: soft memory");
        println!("{}", bench::soft::render(&bench::soft::run()));
    }
    if all || what == "fpr" {
        section("Ablation: free page reporting");
        let cfg = if quick {
            bench::fpr::FprConfig::quick()
        } else {
            bench::fpr::FprConfig::paper()
        };
        println!("{}", bench::fpr::render(&bench::fpr::run(&cfg)));
    }
    if all || what == "temporal" {
        section("Ablation: temporal segregation");
        println!("{}", bench::temporal::render(&bench::temporal::run()));
    }
    if all || what == "hybrid" {
        section("Ablation: hybrid scaling");
        let cfg = if quick {
            bench::hybrid::HybridConfig::quick()
        } else {
            bench::hybrid::HybridConfig::paper()
        };
        println!("{}", bench::hybrid::render(&cfg, &bench::hybrid::run(&cfg)));
    }
    eprintln!("[repro] done in {:.1}s", t0.elapsed().as_secs_f64());
}

fn section(name: &str) {
    println!("{}", "=".repeat(72));
    println!("== {name}");
    println!("{}", "=".repeat(72));
}
