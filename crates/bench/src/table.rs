//! Plain-text table rendering (re-export).
//!
//! [`TextTable`] moved to `sim_core::table` so the scenario layer in
//! `faas` can render result tables without depending on the bench
//! crate; this alias keeps the historical `crate::table::TextTable`
//! path working for the figure modules.

pub use sim_core::table::TextTable;
