//! The benchmark harness: one module per table/figure of the paper.
//!
//! Every module exposes a `Config` with `paper()` (full scale) and
//! `quick()` (CI scale) presets, a `run()` driver returning structured
//! results, and a `render()` that prints the same rows/series the paper
//! reports. The `repro` binary regenerates everything:
//!
//! ```text
//! cargo run --release -p squeezy-bench --bin repro -- all
//! ```

pub mod cluster;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod fpr;
pub mod hybrid;
pub mod perf;
pub mod setup;
pub mod soft;
pub mod table;
pub mod table1;
pub mod temporal;
pub mod thp;
