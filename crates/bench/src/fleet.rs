//! The fleet scenario: autoscale policy × elasticity backend on an
//! elastic host fleet under diurnal load with injected host failures.
//!
//! This is the paper's premise measured at the level it actually pays
//! off: memory elasticity *inside* a host changes how many hosts a
//! fleet needs. The grid crosses four autoscale policies (a fixed
//! peak-provisioned baseline, target-utilization, queue-depth, and the
//! SLAM-style SLO-aware policy) with three elasticity backends under
//! identical diurnal tenant traces and crash plans (paired
//! comparison). The headline number is host-hours at a given
//! SLO-violation rate — "Squeezy needs fewer hosts for the same SLO".
//!
//! Routing uses the stale-view-tolerant power-of-two-choices router:
//! a fleet whose host set churns (boots, drains, crashes) is exactly
//! the environment it was designed for.

use faas::{
    default_slos, AutoscaleOpts, AutoscalePolicy, BackendKind, Deployment, FailureConfig,
    FixedFleet, FleetConfig, FleetResult, FleetSim, HarvestConfig, PowerOfTwoChoices, QueueDepth,
    SimConfig, SlamSlo, TargetUtilization, TenantTrace, VmSpec,
};
use mem_types::GIB;
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{DetRng, Histogram};
use workloads::{diurnal_workload, DiurnalConfig, TenantLoad};

use crate::table::TextTable;

/// Autoscale policies under test (construction recipe: policies are
/// stateful and built fresh per cell).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Frozen fleet provisioned at `max_hosts` — the static
    /// peak-capacity baseline every elastic policy is judged against.
    Fixed,
    TargetUtil,
    QueueDepth,
    SlamSlo,
}

impl PolicyKind {
    /// All policies, in table order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fixed,
        PolicyKind::TargetUtil,
        PolicyKind::QueueDepth,
        PolicyKind::SlamSlo,
    ];

    /// Display name used in the table (the policy's own name, so the
    /// labels cannot drift from the implementations).
    pub fn name(self) -> &'static str {
        self.build().name()
    }

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn AutoscalePolicy> {
        match self {
            PolicyKind::Fixed => Box::new(FixedFleet),
            PolicyKind::TargetUtil => Box::new(TargetUtilization::default_policy()),
            PolicyKind::QueueDepth => Box::new(QueueDepth::default_policy()),
            PolicyKind::SlamSlo => Box::new(SlamSlo::default_policy()),
        }
    }
}

/// Experiment scale.
#[derive(Clone, Debug)]
pub struct FleetBenchConfig {
    /// Tenant functions (Zipf-ranked).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Fleet-wide request rate at the trough / peak of the diurnal
    /// cycle.
    pub trough_rps: f64,
    pub peak_rps: f64,
    /// Length of one diurnal cycle in seconds.
    pub period_s: f64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Physical memory per host.
    pub host_capacity: u64,
    /// Per-tenant max concurrent instances on each host.
    pub concurrency: u32,
    /// Keep-alive window in seconds.
    pub keepalive_s: f64,
    /// Fleet size limits: elastic policies start at `min_hosts`, the
    /// fixed baseline is frozen at `max_hosts`.
    pub min_hosts: usize,
    pub max_hosts: usize,
    /// Provisioning delay for booted hosts, in seconds.
    pub boot_delay_s: f64,
    /// Cooldown between scale actions, in seconds.
    pub cooldown_s: f64,
    /// Mean time between injected host crashes (0 disables).
    pub mtbf_s: f64,
    /// Root seed of the experiment.
    pub seed: u64,
}

impl FleetBenchConfig {
    /// Full scale: a day-compressed diurnal cycle over an up-to-8-host
    /// fleet with roughly two crashes per run.
    pub fn paper() -> Self {
        FleetBenchConfig {
            tenants: 8,
            duration_s: 600.0,
            trough_rps: 2.0,
            peak_rps: 14.0,
            period_s: 600.0,
            zipf_exponent: 1.0,
            host_capacity: 6 * GIB,
            concurrency: 3,
            keepalive_s: 30.0,
            min_hosts: 1,
            max_hosts: 8,
            boot_delay_s: 20.0,
            cooldown_s: 15.0,
            mtbf_s: 300.0,
            seed: 0xF7,
        }
    }

    /// CI scale: one shorter cycle, up to 4 hosts.
    pub fn quick() -> Self {
        FleetBenchConfig {
            tenants: 5,
            duration_s: 300.0,
            trough_rps: 1.0,
            peak_rps: 8.0,
            period_s: 300.0,
            zipf_exponent: 1.0,
            // Tight hosts: admission regularly has to reclaim idle
            // instances' memory, putting the backend's unplug path on
            // the cold-start critical path — the effect the fleet
            // table exists to measure.
            host_capacity: 4 * GIB,
            concurrency: 2,
            keepalive_s: 20.0,
            min_hosts: 1,
            max_hosts: 4,
            boot_delay_s: 15.0,
            cooldown_s: 10.0,
            mtbf_s: 150.0,
            seed: 0xF7,
        }
    }
}

/// One cell of the policy × backend grid (trial means).
#[derive(Clone, Debug)]
pub struct FleetCell {
    pub policy: PolicyKind,
    pub backend: BackendKind,
    /// Requests offered by the trace (mean over trials).
    pub offered: f64,
    /// Requests completed (mean over trials).
    pub completed: f64,
    /// Fleet-wide p99 latency in ms (mean over trials).
    pub p99_ms: f64,
    /// Fraction of requests that triggered a cold start.
    pub cold_ratio: f64,
    /// Fraction of SLO-tracked completions over their target.
    pub slo_viol: f64,
    /// Provisioned host time in host-hours — the fleet cost.
    pub host_hours: f64,
    /// Smallest / largest simultaneously active host counts.
    pub min_hosts: f64,
    pub peak_hosts: f64,
    /// Autoscaler boots and graceful drains.
    pub scale_ups: f64,
    pub scale_downs: f64,
    /// Injected crashes and requests lost to them.
    pub crashes: f64,
    pub lost: f64,
    /// Reservoir-sampled mean latency (ms) per quarter of the run —
    /// the time-resolved view of how the fleet tracks the diurnal
    /// tide.
    pub lat_quarters: [f64; 4],
}

struct FleetExp<'a> {
    cfg: &'a FleetBenchConfig,
    trials: u32,
}

impl FleetExp<'_> {
    fn host_config(
        &self,
        tenants: &[TenantLoad],
        backend: BackendKind,
        seed: u64,
        trial: u64,
    ) -> SimConfig {
        let cfg = self.cfg;
        SimConfig {
            backend,
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: tenants
                    .iter()
                    .map(|t| Deployment {
                        kind: t.kind,
                        concurrency: cfg.concurrency,
                        arrivals: Vec::new(), // the fleet routes the traces
                    })
                    .collect(),
                vcpus: None,
            }],
            host_capacity: cfg.host_capacity,
            keepalive_s: cfg.keepalive_s,
            duration_s: cfg.duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            record_latency_points: false,
            seed,
            trial,
        }
    }

    fn quarter_means(&self, result: &FleetResult) -> [f64; 4] {
        let q = self.cfg.duration_s / 4.0;
        core::array::from_fn(|i| {
            result
                .latency_over_time
                .mean_in(i as f64 * q, (i + 1) as f64 * q)
                .unwrap_or(0.0)
        })
    }
}

impl Experiment for FleetExp<'_> {
    type Point = (PolicyKind, BackendKind);
    type Output = FleetCell;

    fn points(&self) -> Vec<(PolicyKind, BackendKind)> {
        let backends = [
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::SqueezySoft,
        ];
        PolicyKind::ALL
            .iter()
            .flat_map(|&p| backends.iter().map(move |&b| (p, b)))
            .collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, &(policy, backend): &Self::Point, ctx: &mut TrialCtx) -> FleetCell {
        let cfg = self.cfg;
        // The tenant traces are derived from (seed, trial) alone —
        // every cell of a trial sees identical load and an identical
        // crash plan (paired comparison).
        const TRACE_STREAM: u64 = 0x77;
        let mut trace_rng = DetRng::new(cfg.seed).derive(TRACE_STREAM).derive(ctx.trial);
        let tenants = diurnal_workload(
            &DiurnalConfig {
                tenants: cfg.tenants,
                duration_s: cfg.duration_s,
                trough_rps: cfg.trough_rps,
                peak_rps: cfg.peak_rps,
                period_s: cfg.period_s,
                zipf_exponent: cfg.zipf_exponent,
                burst_factor: 2.0,
                burst_duty: 0.15,
            },
            &mut trace_rng,
        );
        let offered: usize = tenants
            .iter()
            .map(|t| t.arrivals.iter().filter(|&&a| a < cfg.duration_s).count())
            .sum();

        // The fixed baseline is provisioned for the peak; elastic
        // policies start at the floor and earn their capacity.
        let initial = if policy == PolicyKind::Fixed {
            cfg.max_hosts
        } else {
            cfg.min_hosts
        };
        let host_seed = |h: u64| DetRng::new(cfg.seed).derive(0x40 + h).seed();
        // The template's seed tag (0x3E) sits far above any initial
        // host index, so booted hosts never share an initial stream.
        let template = self.host_config(&tenants, backend, host_seed(0x3E), ctx.trial);
        let slo = default_slos(tenants.iter().map(|t| t.kind));
        let fleet_cfg = FleetConfig {
            initial_hosts: (0..initial)
                .map(|h| self.host_config(&tenants, backend, host_seed(h as u64), ctx.trial))
                .collect(),
            template,
            tenants: tenants
                .iter()
                .enumerate()
                .map(|(ti, t)| TenantTrace {
                    vm: 0,
                    dep: ti,
                    arrivals: t.arrivals.clone(),
                })
                .collect(),
            autoscale: AutoscaleOpts {
                min_hosts: if policy == PolicyKind::Fixed {
                    cfg.max_hosts
                } else {
                    cfg.min_hosts
                },
                max_hosts: cfg.max_hosts,
                boot_delay_s: cfg.boot_delay_s,
                cooldown_s: cfg.cooldown_s,
            },
            failures: FailureConfig { mtbf_s: cfg.mtbf_s },
            slo,
            // The fleet's own streams (crash plan, reservoir) are
            // derived from (seed, trial) so every cell of a trial
            // sees the same crash instants.
            seed: DetRng::new(cfg.seed)
                .derive(0xF1EE)
                .derive(ctx.trial)
                .seed(),
        };
        // Probe stream derived from (seed, trial) through the router's
        // own constructor, like the cluster bench — the stream tag
        // lives in one place.
        let router = PowerOfTwoChoices::from_seed(DetRng::new(cfg.seed).derive(ctx.trial).seed());
        let result = FleetSim::new(fleet_cfg, Box::new(router), policy.build())
            .expect("fleet boots")
            .run();

        let mut latency = Histogram::new();
        for h in result.merged_latency().values() {
            latency.merge(h);
        }
        let (cold, warm) = result.cold_warm_starts();
        FleetCell {
            policy,
            backend,
            offered: offered as f64,
            completed: result.completed as f64,
            p99_ms: latency.p99(),
            cold_ratio: cold as f64 / (cold + warm).max(1) as f64,
            slo_viol: result.slo_violation_rate(),
            host_hours: result.host_hours(),
            min_hosts: result.min_active() as f64,
            peak_hosts: result.peak_active() as f64,
            scale_ups: result.scale_ups as f64,
            scale_downs: result.scale_downs as f64,
            crashes: result.crashes as f64,
            lost: result.lost as f64,
            lat_quarters: self.quarter_means(&result),
        }
    }
}

/// Runs the grid with default engine options.
pub fn run(cfg: &FleetBenchConfig) -> Vec<FleetCell> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options (trial means per cell).
pub fn run_with(cfg: &FleetBenchConfig, opts: &ExpOpts) -> Vec<FleetCell> {
    let exp = FleetExp {
        cfg,
        trials: opts.trials,
    };
    run_experiment(&exp, opts.effective_jobs())
        .into_iter()
        .map(|trials| {
            let mut cell = trials[0].clone();
            cell.offered = mean_over(&trials, |c| c.offered);
            cell.completed = mean_over(&trials, |c| c.completed);
            cell.p99_ms = mean_over(&trials, |c| c.p99_ms);
            cell.cold_ratio = mean_over(&trials, |c| c.cold_ratio);
            cell.slo_viol = mean_over(&trials, |c| c.slo_viol);
            cell.host_hours = mean_over(&trials, |c| c.host_hours);
            cell.min_hosts = mean_over(&trials, |c| c.min_hosts);
            cell.peak_hosts = mean_over(&trials, |c| c.peak_hosts);
            cell.scale_ups = mean_over(&trials, |c| c.scale_ups);
            cell.scale_downs = mean_over(&trials, |c| c.scale_downs);
            cell.crashes = mean_over(&trials, |c| c.crashes);
            cell.lost = mean_over(&trials, |c| c.lost);
            for q in 0..4 {
                cell.lat_quarters[q] = mean_over(&trials, |c| c.lat_quarters[q]);
            }
            cell
        })
        .collect()
}

/// Renders the policy × backend table plus the headline host-hours
/// comparison.
pub fn render(cells: &[FleetCell]) -> String {
    let mut t = TextTable::new(&[
        "Policy", "Backend", "Served", "p99(ms)", "Cold(%)", "SLOv(%)", "Hosts", "Host-hrs",
        "Scale+", "Scale-", "Crash", "Lost",
    ]);
    for c in cells {
        t.row(vec![
            c.policy.name().to_string(),
            c.backend.name().to_string(),
            format!("{:.0}/{:.0}", c.completed, c.offered),
            format!("{:.0}", c.p99_ms),
            format!("{:.1}", 100.0 * c.cold_ratio),
            format!("{:.1}", 100.0 * c.slo_viol),
            format!("{:.0}→{:.0}", c.min_hosts, c.peak_hosts),
            format!("{:.2}", c.host_hours),
            format!("{:.0}", c.scale_ups),
            format!("{:.0}", c.scale_downs),
            format!("{:.0}", c.crashes),
            format!("{:.0}", c.lost),
        ]);
    }
    let mut out = String::from(
        "Fleet: autoscale policy × elasticity backend under a diurnal multi-tenant \
         load with injected host crashes\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Hosts = min→peak simultaneously active; Host-hrs integrates provisioned \
         time (the fleet cost); Lost = in-flight requests killed by crashes.\n",
    );

    // The headline: the (fleet cost, SLO compliance) point each
    // backend reaches under SLO-aware sizing. The policy spends hosts
    // to buy latency headroom, so the two axes must be read together.
    let pick = |b: BackendKind| {
        cells
            .iter()
            .find(|c| c.policy == PolicyKind::SlamSlo && c.backend == b)
    };
    let slam: Vec<&FleetCell> = [
        BackendKind::VirtioMem,
        BackendKind::Squeezy,
        BackendKind::SqueezySoft,
    ]
    .iter()
    .filter_map(|&b| pick(b))
    .collect();
    if !slam.is_empty() {
        let line = slam
            .iter()
            .map(|c| {
                format!(
                    "{} {:.2} host-hrs at {:.1}% SLO violations",
                    c.backend.name(),
                    c.host_hours,
                    100.0 * c.slo_viol
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        out.push_str(&format!(
            "SLO-aware sizing (slam-slo): {line} — cheaper reclamation turns \
             host-hours into SLO headroom.\n"
        ));
    }
    if let Some(sq) = pick(BackendKind::Squeezy) {
        out.push_str(&format!(
            "Time-resolved mean latency (slam-slo × Squeezy, reservoir-sampled \
             quarters): {:.0} / {:.0} / {:.0} / {:.0} ms\n",
            sq.lat_quarters[0], sq.lat_quarters[1], sq.lat_quarters[2], sq.lat_quarters[3],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized fleet: small enough for the default (debug) test
    /// tier; the full `quick()` scale runs under `slow-tests` and in
    /// the CI repro smoke job.
    fn tiny() -> FleetBenchConfig {
        FleetBenchConfig {
            tenants: 3,
            duration_s: 60.0,
            trough_rps: 0.5,
            peak_rps: 3.5,
            period_s: 60.0,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 12.0,
            min_hosts: 1,
            max_hosts: 3,
            boot_delay_s: 8.0,
            cooldown_s: 6.0,
            mtbf_s: 45.0,
            seed: 0xF7,
        }
    }

    #[test]
    fn grid_serves_the_load_and_scales() {
        let cells = run(&tiny());
        assert_eq!(cells.len(), 12, "4 policies x 3 backends");
        for c in &cells {
            assert!(c.offered > 0.0);
            assert!(
                c.completed + c.lost >= c.offered * 0.8,
                "{}/{} accounted for {}+{} of {}",
                c.policy.name(),
                c.backend.name(),
                c.completed,
                c.lost,
                c.offered
            );
            assert!(c.host_hours > 0.0);
            assert!(c.peak_hosts >= c.min_hosts);
            if c.policy == PolicyKind::Fixed {
                assert_eq!(c.scale_ups + c.scale_downs, 0.0, "fixed never scales");
            }
        }
        // Elastic sizing must undercut undegraded peak provisioning
        // (max_hosts for the whole run). The fixed baseline's *row*
        // can come in under that bound too, but only by losing crashed
        // hosts forever — degraded capacity, not efficiency — so the
        // fair cost yardstick is the full peak-provisioned burn.
        let tiny_cfg = tiny();
        let peak_hours = tiny_cfg.max_hosts as f64 * tiny_cfg.duration_s / 3600.0;
        let slam_hours = cells
            .iter()
            .find(|c| c.policy == PolicyKind::SlamSlo && c.backend == BackendKind::Squeezy)
            .unwrap()
            .host_hours;
        assert!(
            slam_hours < peak_hours,
            "slam {slam_hours} < peak-provisioned {peak_hours}"
        );
    }

    #[test]
    fn output_is_byte_identical_for_any_job_count() {
        let cfg = tiny();
        let serial = render(&run_with(&cfg, &ExpOpts::serial()));
        let parallel = render(&run_with(&cfg, &ExpOpts::serial().with_jobs(4)));
        assert_eq!(serial, parallel);
    }

    /// The CI-scale grid, in release mode only (slow-tests job).
    #[test]
    #[cfg_attr(not(feature = "slow-tests"), ignore = "enable the slow-tests feature")]
    fn quick_grid_serves_the_offered_load() {
        let cells = run(&FleetBenchConfig::quick());
        for c in &cells {
            assert!(
                c.completed + c.lost >= c.offered * 0.8,
                "{}/{} served {} (+{} lost) of {}",
                c.policy.name(),
                c.backend.name(),
                c.completed,
                c.lost,
                c.offered
            );
        }
    }
}
