//! The fleet scenario: autoscale policy × elasticity backend on an
//! elastic host fleet under diurnal load with injected host failures.
//!
//! This is the paper's premise measured at the level it actually pays
//! off: memory elasticity *inside* a host changes how many hosts a
//! fleet needs. The grid crosses four autoscale policies (a fixed
//! peak-provisioned baseline, target-utilization, queue-depth, and the
//! SLAM-style SLO-aware policy) with three elasticity backends under
//! identical diurnal tenant traces and crash plans (paired
//! comparison). The headline number is host-hours at a given
//! SLO-violation rate — "Squeezy needs fewer hosts for the same SLO".
//!
//! Routing uses the stale-view-tolerant power-of-two-choices router:
//! a fleet whose host set churns (boots, drains, crashes) is exactly
//! the environment it was designed for.
//!
//! Since the experiment-manager API landed, this module is just a
//! rendering veneer over a [`SweepSpec`]: the whole grid is the
//! declarative spec [`FleetBenchConfig::sweep`] (a `policy` axis
//! crossed with the backend sweep), expanded into [`SweepCell`]s and
//! run through [`Scenario::run_trial`] — no hand-wired
//! `SimConfig`/`FleetConfig` glue left.

use faas::{
    AxisValues, BackendKind, PolicyKind, RouterKind, Scenario, SweepAxis, SweepCell, SweepSpec,
    Topology,
};
use mem_types::GIB;
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use workloads::WorkloadKind;

use crate::table::TextTable;

/// Experiment scale.
#[derive(Clone, Debug)]
pub struct FleetBenchConfig {
    /// Tenant functions (Zipf-ranked).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Fleet-wide request rate at the trough / peak of the diurnal
    /// cycle.
    pub trough_rps: f64,
    pub peak_rps: f64,
    /// Length of one diurnal cycle in seconds.
    pub period_s: f64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Physical memory per host.
    pub host_capacity: u64,
    /// Per-tenant max concurrent instances on each host.
    pub concurrency: u32,
    /// Keep-alive window in seconds.
    pub keepalive_s: f64,
    /// Fleet size limits: elastic policies start at `min_hosts`, the
    /// fixed baseline is frozen at `max_hosts`.
    pub min_hosts: usize,
    pub max_hosts: usize,
    /// Provisioning delay for booted hosts, in seconds.
    pub boot_delay_s: f64,
    /// Cooldown between scale actions, in seconds.
    pub cooldown_s: f64,
    /// Mean time between injected host crashes (0 disables).
    pub mtbf_s: f64,
    /// Root seed of the experiment.
    pub seed: u64,
}

impl FleetBenchConfig {
    /// Full scale: a day-compressed diurnal cycle over an up-to-8-host
    /// fleet with roughly two crashes per run.
    pub fn paper() -> Self {
        FleetBenchConfig {
            tenants: 8,
            duration_s: 600.0,
            trough_rps: 2.0,
            peak_rps: 14.0,
            period_s: 600.0,
            zipf_exponent: 1.0,
            host_capacity: 6 * GIB,
            concurrency: 3,
            keepalive_s: 30.0,
            min_hosts: 1,
            max_hosts: 8,
            boot_delay_s: 20.0,
            cooldown_s: 15.0,
            mtbf_s: 300.0,
            seed: 0xF7,
        }
    }

    /// CI scale: one shorter cycle, up to 4 hosts.
    pub fn quick() -> Self {
        FleetBenchConfig {
            tenants: 5,
            duration_s: 300.0,
            trough_rps: 1.0,
            peak_rps: 8.0,
            period_s: 300.0,
            zipf_exponent: 1.0,
            // Tight hosts: admission regularly has to reclaim idle
            // instances' memory, putting the backend's unplug path on
            // the cold-start critical path — the effect the fleet
            // table exists to measure.
            host_capacity: 4 * GIB,
            concurrency: 2,
            keepalive_s: 20.0,
            min_hosts: 1,
            max_hosts: 4,
            boot_delay_s: 15.0,
            cooldown_s: 10.0,
            mtbf_s: 150.0,
            seed: 0xF7,
        }
    }

    /// The declarative scenario one `(policy)` row of the grid runs;
    /// the backend axis is supplied per cell at run time.
    pub fn scenario(&self, policy: PolicyKind) -> Scenario {
        let mut s = Scenario::new("fleet-grid", Topology::Fleet, WorkloadKind::Diurnal);
        s.params.tenants = self.tenants;
        s.params.duration_s = self.duration_s;
        s.params.rps = self.peak_rps;
        s.params.trough_rps = self.trough_rps;
        s.params.period_s = self.period_s;
        s.params.zipf_exponent = self.zipf_exponent;
        s.host_capacity = self.host_capacity;
        s.concurrency = self.concurrency;
        s.keepalive_s = self.keepalive_s;
        s.router = RouterKind::PowerOfTwo;
        s.policy = policy;
        s.min_hosts = self.min_hosts;
        s.max_hosts = self.max_hosts;
        s.boot_delay_s = self.boot_delay_s;
        s.cooldown_s = self.cooldown_s;
        s.mtbf_s = self.mtbf_s;
        s.seed = self.seed;
        s
    }

    /// The whole grid as one declarative sweep spec: a `policy` axis
    /// over every registry policy, crossed with the three-backend
    /// sweep by the grid expansion.
    pub fn sweep(&self) -> SweepSpec {
        let mut base = self.scenario(PolicyKind::ALL[0]);
        base.backends = vec![
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::SqueezySoft,
        ];
        let axes = vec![SweepAxis {
            key: "policy".to_string(),
            values: AxisValues::List(
                PolicyKind::ALL
                    .iter()
                    .map(|p| p.key().to_string())
                    .collect(),
            ),
        }];
        SweepSpec::new(base, axes, Vec::new()).expect("fleet grid spec is valid")
    }
}

/// One cell of the policy × backend grid (trial means).
#[derive(Clone, Debug)]
pub struct FleetCell {
    pub policy: PolicyKind,
    pub backend: BackendKind,
    /// Requests offered by the trace (mean over trials).
    pub offered: f64,
    /// Requests completed (mean over trials).
    pub completed: f64,
    /// Fleet-wide p99 latency in ms (mean over trials).
    pub p99_ms: f64,
    /// Fraction of requests that triggered a cold start.
    pub cold_ratio: f64,
    /// Fraction of SLO-tracked completions over their target.
    pub slo_viol: f64,
    /// Provisioned host time in host-hours — the fleet cost.
    pub host_hours: f64,
    /// Smallest / largest simultaneously active host counts.
    pub min_hosts: f64,
    pub peak_hosts: f64,
    /// Autoscaler boots and graceful drains.
    pub scale_ups: f64,
    pub scale_downs: f64,
    /// Injected crashes and requests lost to them.
    pub crashes: f64,
    pub lost: f64,
    /// Reservoir-sampled mean latency (ms) per quarter of the run —
    /// the time-resolved view of how the fleet tracks the diurnal
    /// tide.
    pub lat_quarters: [f64; 4],
}

struct FleetExp {
    /// Expanded sweep cells, one per `(backend, policy)` point.
    cells: Vec<SweepCell>,
    duration_s: f64,
    seed: u64,
    trials: u32,
}

impl Experiment for FleetExp {
    type Point = usize;
    type Output = FleetCell;

    fn points(&self) -> Vec<usize> {
        // Sweep expansion is backend-outermost; the table has always
        // been policy-major, so re-sort cell indices by policy (the
        // index tiebreak preserves the backend order within a policy).
        let mut idx: Vec<usize> = (0..self.cells.len()).collect();
        idx.sort_by_key(|&i| {
            let policy = self.cells[i].scenario.policy;
            (PolicyKind::ALL.iter().position(|&p| p == policy), i)
        });
        idx
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run_trial(&self, &i: &usize, ctx: &mut TrialCtx) -> FleetCell {
        let scenario = &self.cells[i].scenario;
        let backend = scenario.backends[0];
        let out = scenario.run_trial(backend, ctx.trial);
        let reservoir = out
            .latency_over_time
            .as_ref()
            .expect("fleet outcomes carry a reservoir");
        let q = self.duration_s / 4.0;
        let lat_quarters = core::array::from_fn(|i| {
            reservoir
                .mean_in(i as f64 * q, (i + 1) as f64 * q)
                .unwrap_or(0.0)
        });
        let stats = out.fleet.as_ref().expect("fleet outcomes carry stats");
        FleetCell {
            policy: scenario.policy,
            backend,
            offered: out.offered as f64,
            completed: out.completed as f64,
            p99_ms: out.merged_latency().p99(),
            cold_ratio: out.cold_ratio(),
            slo_viol: stats.slo_violation_rate(),
            host_hours: stats.host_hours,
            min_hosts: stats.min_active as f64,
            peak_hosts: stats.peak_active as f64,
            scale_ups: stats.scale_ups as f64,
            scale_downs: stats.scale_downs as f64,
            crashes: stats.crashes as f64,
            lost: stats.lost as f64,
            lat_quarters,
        }
    }
}

/// Runs the grid with default engine options.
pub fn run(cfg: &FleetBenchConfig) -> Vec<FleetCell> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options (trial means per cell).
pub fn run_with(cfg: &FleetBenchConfig, opts: &ExpOpts) -> Vec<FleetCell> {
    let exp = FleetExp {
        cells: cfg.sweep().cells(),
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        trials: opts.trials,
    };
    run_experiment(&exp, opts.effective_jobs())
        .into_iter()
        .map(|trials| {
            let mut cell = trials[0].clone();
            cell.offered = mean_over(&trials, |c| c.offered);
            cell.completed = mean_over(&trials, |c| c.completed);
            cell.p99_ms = mean_over(&trials, |c| c.p99_ms);
            cell.cold_ratio = mean_over(&trials, |c| c.cold_ratio);
            cell.slo_viol = mean_over(&trials, |c| c.slo_viol);
            cell.host_hours = mean_over(&trials, |c| c.host_hours);
            cell.min_hosts = mean_over(&trials, |c| c.min_hosts);
            cell.peak_hosts = mean_over(&trials, |c| c.peak_hosts);
            cell.scale_ups = mean_over(&trials, |c| c.scale_ups);
            cell.scale_downs = mean_over(&trials, |c| c.scale_downs);
            cell.crashes = mean_over(&trials, |c| c.crashes);
            cell.lost = mean_over(&trials, |c| c.lost);
            for q in 0..4 {
                cell.lat_quarters[q] = mean_over(&trials, |c| c.lat_quarters[q]);
            }
            cell
        })
        .collect()
}

/// Renders the policy × backend table plus the headline host-hours
/// comparison.
pub fn render(cells: &[FleetCell]) -> String {
    let mut t = TextTable::new(&[
        "Policy", "Backend", "Served", "p99(ms)", "Cold(%)", "SLOv(%)", "Hosts", "Host-hrs",
        "Scale+", "Scale-", "Crash", "Lost",
    ]);
    for c in cells {
        t.row(vec![
            c.policy.key().to_string(),
            c.backend.name().to_string(),
            format!("{:.0}/{:.0}", c.completed, c.offered),
            format!("{:.0}", c.p99_ms),
            format!("{:.1}", 100.0 * c.cold_ratio),
            format!("{:.1}", 100.0 * c.slo_viol),
            format!("{:.0}→{:.0}", c.min_hosts, c.peak_hosts),
            format!("{:.2}", c.host_hours),
            format!("{:.0}", c.scale_ups),
            format!("{:.0}", c.scale_downs),
            format!("{:.0}", c.crashes),
            format!("{:.0}", c.lost),
        ]);
    }
    let mut out = String::from(
        "Fleet: autoscale policy × elasticity backend under a diurnal multi-tenant \
         load with injected host crashes\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Hosts = min→peak simultaneously active; Host-hrs integrates provisioned \
         time (the fleet cost); Lost = in-flight requests killed by crashes.\n",
    );

    // The headline: the (fleet cost, SLO compliance) point each
    // backend reaches under SLO-aware sizing. The policy spends hosts
    // to buy latency headroom, so the two axes must be read together.
    let pick = |b: BackendKind| {
        cells
            .iter()
            .find(|c| c.policy == PolicyKind::SlamSlo && c.backend == b)
    };
    let slam: Vec<&FleetCell> = [
        BackendKind::VirtioMem,
        BackendKind::Squeezy,
        BackendKind::SqueezySoft,
    ]
    .iter()
    .filter_map(|&b| pick(b))
    .collect();
    if !slam.is_empty() {
        let line = slam
            .iter()
            .map(|c| {
                format!(
                    "{} {:.2} host-hrs at {:.1}% SLO violations",
                    c.backend.name(),
                    c.host_hours,
                    100.0 * c.slo_viol
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        out.push_str(&format!(
            "SLO-aware sizing (slam-slo): {line} — cheaper reclamation turns \
             host-hours into SLO headroom.\n"
        ));
    }
    if let Some(sq) = pick(BackendKind::Squeezy) {
        out.push_str(&format!(
            "Time-resolved mean latency (slam-slo × Squeezy, reservoir-sampled \
             quarters): {:.0} / {:.0} / {:.0} / {:.0} ms\n",
            sq.lat_quarters[0], sq.lat_quarters[1], sq.lat_quarters[2], sq.lat_quarters[3],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized fleet: small enough for the default (debug) test
    /// tier; the full `quick()` scale runs under `slow-tests` and in
    /// the CI repro smoke job.
    fn tiny() -> FleetBenchConfig {
        FleetBenchConfig {
            tenants: 3,
            duration_s: 60.0,
            trough_rps: 0.5,
            peak_rps: 3.5,
            period_s: 60.0,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 12.0,
            min_hosts: 1,
            max_hosts: 3,
            boot_delay_s: 8.0,
            cooldown_s: 6.0,
            mtbf_s: 45.0,
            seed: 0xF7,
        }
    }

    #[test]
    fn grid_serves_the_load_and_scales() {
        let cells = run(&tiny());
        assert_eq!(cells.len(), 12, "4 policies x 3 backends");
        for c in &cells {
            assert!(c.offered > 0.0);
            assert!(
                c.completed + c.lost >= c.offered * 0.8,
                "{}/{} accounted for {}+{} of {}",
                c.policy.key(),
                c.backend.name(),
                c.completed,
                c.lost,
                c.offered
            );
            assert!(c.host_hours > 0.0);
            assert!(c.peak_hosts >= c.min_hosts);
            if c.policy == PolicyKind::Fixed {
                assert_eq!(c.scale_ups + c.scale_downs, 0.0, "fixed never scales");
            }
        }
        // Elastic sizing must undercut undegraded peak provisioning
        // (max_hosts for the whole run). The fixed baseline's *row*
        // can come in under that bound too, but only by losing crashed
        // hosts forever — degraded capacity, not efficiency — so the
        // fair cost yardstick is the full peak-provisioned burn.
        let tiny_cfg = tiny();
        let peak_hours = tiny_cfg.max_hosts as f64 * tiny_cfg.duration_s / 3600.0;
        let slam_hours = cells
            .iter()
            .find(|c| c.policy == PolicyKind::SlamSlo && c.backend == BackendKind::Squeezy)
            .unwrap()
            .host_hours;
        assert!(
            slam_hours < peak_hours,
            "slam {slam_hours} < peak-provisioned {peak_hours}"
        );
    }

    #[test]
    fn output_is_byte_identical_for_any_job_count() {
        let cfg = tiny();
        let serial = render(&run_with(&cfg, &ExpOpts::serial()));
        let parallel = render(&run_with(&cfg, &ExpOpts::serial().with_jobs(4)));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_is_a_declarative_sweep_spec() {
        let spec = tiny().sweep();
        assert_eq!(spec.cells().len(), 12, "4 policies x 3 backends");
        // The spec survives the spec-file format round trip — the grid
        // could be a committed .scn file.
        let reparsed = faas::SweepSpec::parse(&spec.render()).expect("renders valid spec");
        assert_eq!(reparsed, spec);
    }

    /// The CI-scale grid, in release mode only (slow-tests job).
    #[test]
    #[cfg_attr(not(feature = "slow-tests"), ignore = "enable the slow-tests feature")]
    fn quick_grid_serves_the_offered_load() {
        let cells = run(&FleetBenchConfig::quick());
        for c in &cells {
            assert!(
                c.completed + c.lost >= c.offered * 0.8,
                "{}/{} served {} (+{} lost) of {}",
                c.policy.key(),
                c.backend.name(),
                c.completed,
                c.lost,
                c.offered
            );
        }
    }
}
