//! Figure 1: the N:1 model's idle-memory problem. A 50:1 VM serves a
//! bursty trace; guest memory usage tracks the instance count, but the
//! host keeps the peak allocated because nothing reclaims it.

use faas::{BackendKind, Deployment, FaasSim, SimConfig, SimResult, VmSpec};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::SimDuration;
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig1Config {
    /// Concurrency factor of the VM (paper: 50).
    pub concurrency: u32,
    /// Trace length (paper: ~450 s shown).
    pub duration_s: f64,
    /// Peak burst rate in requests/second.
    pub burst_rps: f64,
    /// Keep-alive window before idle eviction.
    pub keepalive_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig1Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig1Config {
            concurrency: 50,
            duration_s: 450.0,
            burst_rps: 160.0,
            keepalive_s: 120.0,
            seed: 11,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig1Config {
            concurrency: 10,
            duration_s: 150.0,
            burst_rps: 30.0,
            keepalive_s: 40.0,
            seed: 11,
        }
    }
}

/// The motivation experiment as a one-point sweep on the engine: the
/// output is a single timeline, so it clamps to one trial.
struct Fig1Exp<'a> {
    cfg: &'a Fig1Config,
}

impl Experiment for Fig1Exp<'_> {
    type Point = ();
    type Output = SimResult;

    fn points(&self) -> Vec<()> {
        vec![()]
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, _point: &(), ctx: &mut TrialCtx) -> SimResult {
        run_trial(self.cfg, ctx)
    }
}

/// Runs the motivation experiment on the static (vanilla N:1) backend.
pub fn run(cfg: &Fig1Config) -> SimResult {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig1Config, opts: &ExpOpts) -> SimResult {
    run_experiment(&Fig1Exp { cfg }, opts.effective_jobs())
        .remove(0)
        .remove(0)
}

fn run_trial(cfg: &Fig1Config, ctx: &mut TrialCtx) -> SimResult {
    let rng = &mut ctx.rng;
    // A strong burst early, then decaying load: instances pile up and
    // then go idle.
    let trace_cfg = BurstyTraceConfig {
        duration_s: cfg.duration_s * 0.45,
        base_rps: 1.0,
        burst_rps: cfg.burst_rps,
        mean_burst_s: 25.0,
        mean_idle_s: 20.0,
    };
    let mut arrivals = bursty_arrivals(&trace_cfg, rng);
    // Light tail traffic afterwards.
    let tail = BurstyTraceConfig {
        duration_s: cfg.duration_s,
        base_rps: 0.5,
        burst_rps: 2.0,
        mean_burst_s: 10.0,
        mean_idle_s: 60.0,
    };
    arrivals.extend(
        bursty_arrivals(&tail, rng)
            .into_iter()
            .filter(|&t| t > cfg.duration_s * 0.45),
    );
    arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let sim_cfg = SimConfig {
        keepalive_s: cfg.keepalive_s,
        seed: cfg.seed,
        trial: ctx.trial,
        ..SimConfig::single_vm(
            BackendKind::Static,
            Deployment {
                kind: FunctionKind::Html,
                concurrency: cfg.concurrency,
                arrivals,
            },
            cfg.duration_s,
        )
    };
    let sim_cfg = SimConfig {
        vms: vec![VmSpec {
            deployments: sim_cfg.vms[0].deployments.clone(),
            vcpus: Some((cfg.concurrency as f64 * 0.25).ceil().max(2.0)),
        }],
        ..sim_cfg
    };
    FaasSim::new(sim_cfg).expect("boot").run()
}

/// Renders guest/host usage and instance count over time.
pub fn render(result: &SimResult) -> String {
    let step = SimDuration::secs(15);
    let guest = result.guest_usage[0].downsample(step);
    let host = result.host_usage.downsample(step);
    let insts = result.instance_counts[0].downsample(step);
    let mut t = TextTable::new(&["Time(s)", "Guest(GiB)", "Host(GiB)", "#Instances"]);
    for i in 0..guest.len().min(host.len()).min(insts.len()) {
        t.row(vec![
            format!("{:.0}", guest[i].0),
            format!("{:.2}", guest[i].1 / (1u64 << 30) as f64),
            format!("{:.2}", host[i].1 / (1u64 << 30) as f64),
            format!("{:.0}", insts[i].1),
        ]);
    }
    let guest_peak = result.guest_usage[0].max_value() / (1u64 << 30) as f64;
    let guest_last = result.guest_usage[0]
        .points()
        .last()
        .map(|&(_, v)| v / (1u64 << 30) as f64)
        .unwrap_or(0.0);
    let host_last = result
        .host_usage
        .points()
        .last()
        .map(|&(_, v)| v / (1u64 << 30) as f64)
        .unwrap_or(0.0);
    let mut out = String::from(
        "Figure 1: N:1 VM memory usage (guest vs host) under a bursty trace, static backend\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "guest peak {guest_peak:.2} GiB -> ends at {guest_last:.2} GiB after evictions; \
         host stays at {host_last:.2} GiB (idle memory, paper Figure 1)\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_keeps_peak_while_guest_shrinks() {
        let result = run(&Fig1Config::quick());
        assert!(result.completed > 20, "trace served");
        let guest = &result.guest_usage[0];
        let host = &result.host_usage;
        let guest_peak = guest.max_value();
        let guest_end = guest.points().last().unwrap().1;
        let host_peak = host.max_value();
        let host_end = host.points().last().unwrap().1;
        // Evictions shrank guest usage well below its peak…
        assert!(
            guest_end < guest_peak * 0.7,
            "guest {guest_end} vs peak {guest_peak}"
        );
        // …but host usage never came down.
        assert!(
            host_end > host_peak * 0.98,
            "host {host_end} vs peak {host_peak}"
        );
    }

    #[test]
    fn instances_scale_up_and_down() {
        let result = run(&Fig1Config::quick());
        let insts = &result.instance_counts[0];
        let peak = insts.max_value();
        assert!(peak >= 3.0, "burst created instances: peak {peak}");
        let last = insts.points().last().unwrap().1;
        assert!(last < peak, "keep-alive evicted idle instances");
    }
}
