//! Table 1: the serverless functions used in the evaluation and their
//! per-instance resource limits.

use workloads::FunctionKind;

use crate::table::TextTable;

/// Renders Table 1 from the workload profiles.
pub fn render() -> String {
    let mut t = TextTable::new(&["Function", "Description", "vCPU shares", "Memory (MiB)"]);
    let descr = |k: FunctionKind| match k {
        FunctionKind::Cnn => "JPEG classification",
        FunctionKind::Bert => "ML inference",
        FunctionKind::Bfs => "Breadth-first search",
        FunctionKind::Html => "Web service",
    };
    // The paper lists Cnn, Bert, BFS, HTML in this order.
    for kind in [
        FunctionKind::Cnn,
        FunctionKind::Bert,
        FunctionKind::Bfs,
        FunctionKind::Html,
    ] {
        let p = kind.profile();
        t.row(vec![
            kind.name().to_string(),
            descr(kind).to_string(),
            format!("{}", p.vcpu_shares),
            format!("{}", p.memory_limit.as_mib()),
        ]);
    }
    let mut out = String::from("Table 1: serverless functions and per-instance resource limits\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_matches_paper_values() {
        let s = super::render();
        assert!(s.contains("Cnn"));
        assert!(s.contains("768"));
        assert!(s.contains("1536"));
        assert!(s.contains("0.25"));
        assert!(s.contains("JPEG classification"));
    }
}
