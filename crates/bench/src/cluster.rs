//! The cluster scenario: routing policy × elasticity backend on a
//! multi-host fleet serving a Zipf-skewed multi-tenant workload.
//!
//! This goes beyond the paper (which evaluates one OpenWhisk host): the
//! memory/latency trades of §6.2 are made at the *fleet* level, where
//! the router decides which host pays each cold start and which host's
//! backend must find the memory. The grid crosses the three routing
//! policies with three elasticity backends under identical tenant
//! traces (paired comparison), reporting cluster-wide latency
//! percentiles, cold-start share, memory footprint and routing balance.

use faas::{
    BackendKind, ClusterConfig, ClusterSim, Deployment, HarvestConfig, LeastLoaded,
    PowerOfTwoChoices, RoundRobin, Router, SimConfig, TenantTrace, VmSpec, WarmAffinity,
};
use mem_types::GIB;
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{DetRng, Histogram};
use workloads::{multi_tenant_workload, MultiTenantConfig, TenantLoad};

use crate::table::TextTable;

/// Routing policies under test (construction recipe: `Box<dyn Router>`
/// is stateful and built fresh per cell).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouterKind {
    RoundRobin,
    LeastLoaded,
    WarmAffinity,
    PowerOfTwo,
}

impl RouterKind {
    /// All policies, in table order.
    pub const ALL: [RouterKind; 4] = [
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::WarmAffinity,
        RouterKind::PowerOfTwo,
    ];

    /// Display name used in the table (the router's own name, so the
    /// labels cannot drift from the policy implementations).
    pub fn name(self) -> &'static str {
        self.build(0).name()
    }

    /// Builds a fresh router instance. Randomized policies derive their
    /// probe stream from `seed`; the deterministic ones ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastLoaded => Box::new(LeastLoaded),
            RouterKind::WarmAffinity => Box::new(WarmAffinity),
            RouterKind::PowerOfTwo => Box::new(PowerOfTwoChoices::from_seed(seed)),
        }
    }
}

/// Experiment scale.
#[derive(Clone, Debug)]
pub struct ClusterBenchConfig {
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Tenant functions (Zipf-ranked).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total average request rate across tenants.
    pub total_rps: f64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Physical memory per host.
    pub host_capacity: u64,
    /// Per-tenant max concurrent instances on each host.
    pub concurrency: u32,
    /// Keep-alive window in seconds.
    pub keepalive_s: f64,
    /// Root seed of the experiment.
    pub seed: u64,
}

impl ClusterBenchConfig {
    /// Full scale: a 4-host fleet under sustained skewed load.
    pub fn paper() -> Self {
        ClusterBenchConfig {
            hosts: 4,
            tenants: 8,
            duration_s: 300.0,
            total_rps: 10.0,
            zipf_exponent: 1.0,
            host_capacity: 6 * GIB,
            concurrency: 3,
            keepalive_s: 30.0,
            seed: 0xC1,
        }
    }

    /// CI scale: two hosts, shorter trace.
    pub fn quick() -> Self {
        ClusterBenchConfig {
            hosts: 2,
            tenants: 4,
            duration_s: 120.0,
            total_rps: 4.0,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 20.0,
            seed: 0xC1,
        }
    }
}

/// One cell of the routing × backend grid (trial means).
#[derive(Clone, Debug)]
pub struct ClusterCell {
    pub router: RouterKind,
    pub backend: BackendKind,
    /// Requests offered by the trace (mean over trials).
    pub offered: f64,
    /// Requests completed (mean over trials).
    pub completed: f64,
    /// Cluster-wide latency stats in ms (mean over trials).
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    /// Fraction of requests that triggered a cold start.
    pub cold_ratio: f64,
    /// Integrated cluster memory footprint (GiB·s).
    pub gib_s: f64,
    /// Share of all requests routed to the hottest host (1/hosts =
    /// perfectly balanced, 1.0 = everything on one host). Well-defined
    /// even when some hosts receive nothing.
    pub hot_share: f64,
}

struct ClusterExp<'a> {
    cfg: &'a ClusterBenchConfig,
    trials: u32,
}

impl ClusterExp<'_> {
    fn host_config(&self, tenants: &[TenantLoad], host: usize, trial: u64) -> SimConfig {
        let cfg = self.cfg;
        SimConfig {
            backend: BackendKind::Squeezy, // overwritten per point
            harvest: HarvestConfig::default(),
            vms: vec![VmSpec {
                deployments: tenants
                    .iter()
                    .map(|t| Deployment {
                        kind: t.kind,
                        concurrency: cfg.concurrency,
                        arrivals: Vec::new(), // the cluster routes the traces
                    })
                    .collect(),
                vcpus: None,
            }],
            host_capacity: cfg.host_capacity,
            keepalive_s: cfg.keepalive_s,
            duration_s: cfg.duration_s,
            sample_period_s: 1.0,
            unplug_deadline_ms: 5_000,
            // Fleet-scale runs keep memory bounded: no per-request
            // points, only the aggregate histograms.
            record_latency_points: false,
            seed: DetRng::new(cfg.seed).derive(0x40 + host as u64).seed(),
            trial,
        }
    }
}

impl Experiment for ClusterExp<'_> {
    type Point = (RouterKind, BackendKind);
    type Output = ClusterCell;

    fn points(&self) -> Vec<(RouterKind, BackendKind)> {
        let backends = [
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::SqueezySoft,
        ];
        RouterKind::ALL
            .iter()
            .flat_map(|&r| backends.iter().map(move |&b| (r, b)))
            .collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, &(router, backend): &Self::Point, ctx: &mut TrialCtx) -> ClusterCell {
        // The tenant traces are derived from (seed, trial) alone — every
        // point of a trial sees identical load (paired comparison).
        const TRACE_STREAM: u64 = 0x77;
        let mut trace_rng = DetRng::new(self.cfg.seed)
            .derive(TRACE_STREAM)
            .derive(ctx.trial);
        let tenants = multi_tenant_workload(
            &MultiTenantConfig {
                tenants: self.cfg.tenants,
                duration_s: self.cfg.duration_s,
                total_rps: self.cfg.total_rps,
                zipf_exponent: self.cfg.zipf_exponent,
            },
            &mut trace_rng,
        );
        let offered: usize = tenants
            .iter()
            .map(|t| {
                t.arrivals
                    .iter()
                    .filter(|&&a| a < self.cfg.duration_s)
                    .count()
            })
            .sum();

        let hosts = (0..self.cfg.hosts)
            .map(|h| {
                let mut cfg = self.host_config(&tenants, h, ctx.trial);
                cfg.backend = backend;
                cfg
            })
            .collect();
        let traces = tenants
            .iter()
            .enumerate()
            .map(|(ti, t)| TenantTrace {
                vm: 0,
                dep: ti,
                arrivals: t.arrivals.clone(),
            })
            .collect();
        let result = ClusterSim::new(
            ClusterConfig {
                hosts,
                tenants: traces,
            },
            // Randomized routers draw from a (seed, trial)-derived
            // stream so trials stay independent and reproducible.
            router.build(DetRng::new(self.cfg.seed).derive(ctx.trial).seed()),
        )
        .expect("hosts boot")
        .run();

        let mut latency = Histogram::new();
        for h in result.merged_latency().values() {
            latency.merge(h);
        }
        let (cold, warm) = result.cold_warm_starts();
        let per_host = result.routed_per_host();
        let max_routed = per_host.iter().copied().max().unwrap_or(0) as f64;
        let total_routed: u64 = per_host.iter().sum();
        ClusterCell {
            router,
            backend,
            offered: offered as f64,
            completed: result.completed as f64,
            p50_ms: latency.p50(),
            p99_ms: latency.p99(),
            mean_ms: latency.mean(),
            cold_ratio: cold as f64 / (cold + warm).max(1) as f64,
            gib_s: result.total_gib_seconds(),
            hot_share: max_routed / (total_routed.max(1)) as f64,
        }
    }
}

/// Runs the grid with default engine options.
pub fn run(cfg: &ClusterBenchConfig) -> Vec<ClusterCell> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options (trial means per cell).
pub fn run_with(cfg: &ClusterBenchConfig, opts: &ExpOpts) -> Vec<ClusterCell> {
    let exp = ClusterExp {
        cfg,
        trials: opts.trials,
    };
    run_experiment(&exp, opts.effective_jobs())
        .into_iter()
        .map(|trials| {
            let mut cell = trials[0].clone();
            cell.offered = mean_over(&trials, |c| c.offered);
            cell.completed = mean_over(&trials, |c| c.completed);
            cell.p50_ms = mean_over(&trials, |c| c.p50_ms);
            cell.p99_ms = mean_over(&trials, |c| c.p99_ms);
            cell.mean_ms = mean_over(&trials, |c| c.mean_ms);
            cell.cold_ratio = mean_over(&trials, |c| c.cold_ratio);
            cell.gib_s = mean_over(&trials, |c| c.gib_s);
            cell.hot_share = mean_over(&trials, |c| c.hot_share);
            cell
        })
        .collect()
}

/// Renders the routing × backend table.
pub fn render(cells: &[ClusterCell]) -> String {
    let mut t = TextTable::new(&[
        "Router", "Backend", "Served", "p50(ms)", "p99(ms)", "Mean(ms)", "Cold(%)", "GiB*s",
        "Hot(%)",
    ]);
    for c in cells {
        t.row(vec![
            c.router.name().to_string(),
            c.backend.name().to_string(),
            format!("{:.0}/{:.0}", c.completed, c.offered),
            format!("{:.0}", c.p50_ms),
            format!("{:.0}", c.p99_ms),
            format!("{:.0}", c.mean_ms),
            format!("{:.1}", 100.0 * c.cold_ratio),
            format!("{:.1}", c.gib_s),
            format!("{:.1}", 100.0 * c.hot_share),
        ]);
    }
    let mut out = String::from(
        "Cluster: routing policy × elasticity backend under a Zipf multi-tenant load\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Hot = share of requests on the most-loaded host (lower is more \
         balanced); warm-affinity trades balance for warm hits.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized fleet: small enough for the default (debug) test
    /// tier; the full `quick()` scale runs under `slow-tests` and in
    /// the CI repro smoke job.
    fn tiny() -> ClusterBenchConfig {
        ClusterBenchConfig {
            hosts: 2,
            tenants: 2,
            duration_s: 40.0,
            total_rps: 1.5,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 15.0,
            seed: 0xC1,
        }
    }

    #[test]
    fn grid_serves_the_offered_load() {
        let cells = run(&tiny());
        assert_eq!(cells.len(), 12, "4 routers x 3 backends");
        for c in &cells {
            assert!(c.offered > 0.0);
            assert!(
                c.completed >= c.offered * 0.95,
                "{}/{} served {}/{}",
                c.router.name(),
                c.backend.name(),
                c.completed,
                c.offered
            );
            assert!(c.p99_ms >= c.p50_ms);
        }
        let cold = |r: RouterKind| {
            cells
                .iter()
                .filter(|c| c.router == r && c.backend == BackendKind::Squeezy)
                .map(|c| c.cold_ratio)
                .next()
                .expect("cell present")
        };
        assert!(
            cold(RouterKind::WarmAffinity) <= cold(RouterKind::RoundRobin) + 1e-9,
            "affinity {} ≤ round-robin {}",
            cold(RouterKind::WarmAffinity),
            cold(RouterKind::RoundRobin)
        );
    }

    #[test]
    fn output_is_byte_identical_for_any_job_count() {
        let cfg = tiny();
        let serial = render(&run_with(&cfg, &ExpOpts::serial()));
        let parallel = render(&run_with(&cfg, &ExpOpts::serial().with_jobs(4)));
        assert_eq!(serial, parallel);
    }

    /// The CI-scale grid, in release mode only (slow-tests job).
    #[test]
    #[cfg_attr(not(feature = "slow-tests"), ignore = "enable the slow-tests feature")]
    fn quick_grid_serves_the_offered_load() {
        let cells = run(&ClusterBenchConfig::quick());
        for c in &cells {
            assert!(
                c.completed >= c.offered * 0.95,
                "{}/{} served {}/{}",
                c.router.name(),
                c.backend.name(),
                c.completed,
                c.offered
            );
        }
    }
}
