//! The cluster scenario: routing policy × elasticity backend on a
//! multi-host fleet serving a Zipf-skewed multi-tenant workload.
//!
//! This goes beyond the paper (which evaluates one OpenWhisk host): the
//! memory/latency trades of §6.2 are made at the *fleet* level, where
//! the router decides which host pays each cold start and which host's
//! backend must find the memory. The grid crosses the routing policies
//! with three elasticity backends under identical tenant traces (paired
//! comparison), reporting cluster-wide latency percentiles, cold-start
//! share, memory footprint and routing balance.
//!
//! Since the experiment-manager API landed, this module is just a
//! rendering veneer over a [`SweepSpec`]: the whole grid is the
//! declarative spec [`ClusterBenchConfig::sweep`] (a `router` axis
//! crossed with the backend sweep), expanded into [`SweepCell`]s and
//! run through [`Scenario::run_trial`] — no hand-wired
//! `SimConfig`/`ClusterConfig` glue left.

use faas::{
    AxisValues, BackendKind, RouterKind, Scenario, SweepAxis, SweepCell, SweepSpec, Topology,
};
use mem_types::GIB;
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use workloads::WorkloadKind;

use crate::table::TextTable;

/// Experiment scale.
#[derive(Clone, Debug)]
pub struct ClusterBenchConfig {
    /// Hosts in the fleet.
    pub hosts: usize,
    /// Tenant functions (Zipf-ranked).
    pub tenants: usize,
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Total average request rate across tenants.
    pub total_rps: f64,
    /// Zipf popularity exponent.
    pub zipf_exponent: f64,
    /// Physical memory per host.
    pub host_capacity: u64,
    /// Per-tenant max concurrent instances on each host.
    pub concurrency: u32,
    /// Keep-alive window in seconds.
    pub keepalive_s: f64,
    /// Root seed of the experiment.
    pub seed: u64,
}

impl ClusterBenchConfig {
    /// Full scale: a 4-host fleet under sustained skewed load.
    pub fn paper() -> Self {
        ClusterBenchConfig {
            hosts: 4,
            tenants: 8,
            duration_s: 300.0,
            total_rps: 10.0,
            zipf_exponent: 1.0,
            host_capacity: 6 * GIB,
            concurrency: 3,
            keepalive_s: 30.0,
            seed: 0xC1,
        }
    }

    /// CI scale: two hosts, shorter trace.
    pub fn quick() -> Self {
        ClusterBenchConfig {
            hosts: 2,
            tenants: 4,
            duration_s: 120.0,
            total_rps: 4.0,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 20.0,
            seed: 0xC1,
        }
    }

    /// The declarative scenario one `(router)` column of the grid
    /// runs; the backend axis is supplied per cell at run time.
    pub fn scenario(&self, router: RouterKind) -> Scenario {
        let mut s = Scenario::new(
            "cluster-grid",
            Topology::Cluster(self.hosts),
            WorkloadKind::ZipfCluster,
        );
        s.params.tenants = self.tenants;
        s.params.duration_s = self.duration_s;
        s.params.rps = self.total_rps;
        s.params.zipf_exponent = self.zipf_exponent;
        s.host_capacity = self.host_capacity;
        s.concurrency = self.concurrency;
        s.keepalive_s = self.keepalive_s;
        s.router = router;
        s.seed = self.seed;
        s
    }

    /// The whole grid as one declarative sweep spec: a `router` axis
    /// over [`GRID_ROUTERS`], crossed with the three-backend sweep by
    /// the grid expansion.
    pub fn sweep(&self) -> SweepSpec {
        let mut base = self.scenario(GRID_ROUTERS[0]);
        base.backends = vec![
            BackendKind::VirtioMem,
            BackendKind::Squeezy,
            BackendKind::SqueezySoft,
        ];
        let axes = vec![SweepAxis {
            key: "router".to_string(),
            values: AxisValues::List(GRID_ROUTERS.iter().map(|r| r.key().to_string()).collect()),
        }];
        SweepSpec::new(base, axes, Vec::new()).expect("cluster grid spec is valid")
    }
}

/// The routers the grid sweeps (every registry policy except the
/// degenerate single-host passthrough).
pub const GRID_ROUTERS: [RouterKind; 4] = [
    RouterKind::RoundRobin,
    RouterKind::LeastLoaded,
    RouterKind::WarmAffinity,
    RouterKind::PowerOfTwo,
];

/// One cell of the routing × backend grid (trial means).
#[derive(Clone, Debug)]
pub struct ClusterCell {
    pub router: RouterKind,
    pub backend: BackendKind,
    /// Requests offered by the trace (mean over trials).
    pub offered: f64,
    /// Requests completed (mean over trials).
    pub completed: f64,
    /// Cluster-wide latency stats in ms (mean over trials).
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    /// Fraction of requests that triggered a cold start.
    pub cold_ratio: f64,
    /// Integrated cluster memory footprint (GiB·s).
    pub gib_s: f64,
    /// Share of all requests routed to the hottest host (1/hosts =
    /// perfectly balanced, 1.0 = everything on one host). Well-defined
    /// even when some hosts receive nothing.
    pub hot_share: f64,
}

struct ClusterExp {
    /// Expanded sweep cells, one per `(backend, router)` point.
    cells: Vec<SweepCell>,
    seed: u64,
    trials: u32,
}

impl Experiment for ClusterExp {
    type Point = usize;
    type Output = ClusterCell;

    fn points(&self) -> Vec<usize> {
        // Sweep expansion is backend-outermost; the table has always
        // been router-major, so re-sort cell indices by router (the
        // index tiebreak preserves the backend order within a router).
        let mut idx: Vec<usize> = (0..self.cells.len()).collect();
        idx.sort_by_key(|&i| {
            let router = self.cells[i].scenario.router;
            (GRID_ROUTERS.iter().position(|&r| r == router), i)
        });
        idx
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run_trial(&self, &i: &usize, ctx: &mut TrialCtx) -> ClusterCell {
        let scenario = &self.cells[i].scenario;
        let backend = scenario.backends[0];
        let out = scenario.run_trial(backend, ctx.trial);
        let mut latency = out.merged_latency();
        ClusterCell {
            router: scenario.router,
            backend,
            offered: out.offered as f64,
            completed: out.completed as f64,
            p50_ms: latency.p50(),
            p99_ms: latency.p99(),
            mean_ms: latency.mean(),
            cold_ratio: out.cold_ratio(),
            gib_s: out.gib_seconds,
            hot_share: out.hot_share().expect("cluster outcomes route"),
        }
    }
}

/// Runs the grid with default engine options.
pub fn run(cfg: &ClusterBenchConfig) -> Vec<ClusterCell> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options (trial means per cell).
pub fn run_with(cfg: &ClusterBenchConfig, opts: &ExpOpts) -> Vec<ClusterCell> {
    let exp = ClusterExp {
        cells: cfg.sweep().cells(),
        seed: cfg.seed,
        trials: opts.trials,
    };
    run_experiment(&exp, opts.effective_jobs())
        .into_iter()
        .map(|trials| {
            let mut cell = trials[0].clone();
            cell.offered = mean_over(&trials, |c| c.offered);
            cell.completed = mean_over(&trials, |c| c.completed);
            cell.p50_ms = mean_over(&trials, |c| c.p50_ms);
            cell.p99_ms = mean_over(&trials, |c| c.p99_ms);
            cell.mean_ms = mean_over(&trials, |c| c.mean_ms);
            cell.cold_ratio = mean_over(&trials, |c| c.cold_ratio);
            cell.gib_s = mean_over(&trials, |c| c.gib_s);
            cell.hot_share = mean_over(&trials, |c| c.hot_share);
            cell
        })
        .collect()
}

/// Renders the routing × backend table.
pub fn render(cells: &[ClusterCell]) -> String {
    let mut t = TextTable::new(&[
        "Router", "Backend", "Served", "p50(ms)", "p99(ms)", "Mean(ms)", "Cold(%)", "GiB*s",
        "Hot(%)",
    ]);
    for c in cells {
        t.row(vec![
            c.router.key().to_string(),
            c.backend.name().to_string(),
            format!("{:.0}/{:.0}", c.completed, c.offered),
            format!("{:.0}", c.p50_ms),
            format!("{:.0}", c.p99_ms),
            format!("{:.0}", c.mean_ms),
            format!("{:.1}", 100.0 * c.cold_ratio),
            format!("{:.1}", c.gib_s),
            format!("{:.1}", 100.0 * c.hot_share),
        ]);
    }
    let mut out = String::from(
        "Cluster: routing policy × elasticity backend under a Zipf multi-tenant load\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "Hot = share of requests on the most-loaded host (lower is more \
         balanced); warm-affinity trades balance for warm hits.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test-sized fleet: small enough for the default (debug) test
    /// tier; the full `quick()` scale runs under `slow-tests` and in
    /// the CI repro smoke job.
    fn tiny() -> ClusterBenchConfig {
        ClusterBenchConfig {
            hosts: 2,
            tenants: 2,
            duration_s: 40.0,
            total_rps: 1.5,
            zipf_exponent: 1.0,
            host_capacity: 5 * GIB,
            concurrency: 2,
            keepalive_s: 15.0,
            seed: 0xC1,
        }
    }

    #[test]
    fn grid_serves_the_offered_load() {
        let cells = run(&tiny());
        assert_eq!(cells.len(), 12, "4 routers x 3 backends");
        for c in &cells {
            assert!(c.offered > 0.0);
            assert!(
                c.completed >= c.offered * 0.95,
                "{}/{} served {}/{}",
                c.router.key(),
                c.backend.name(),
                c.completed,
                c.offered
            );
            assert!(c.p99_ms >= c.p50_ms);
        }
        let cold = |r: RouterKind| {
            cells
                .iter()
                .filter(|c| c.router == r && c.backend == BackendKind::Squeezy)
                .map(|c| c.cold_ratio)
                .next()
                .expect("cell present")
        };
        assert!(
            cold(RouterKind::WarmAffinity) <= cold(RouterKind::RoundRobin) + 1e-9,
            "affinity {} ≤ round-robin {}",
            cold(RouterKind::WarmAffinity),
            cold(RouterKind::RoundRobin)
        );
    }

    #[test]
    fn output_is_byte_identical_for_any_job_count() {
        let cfg = tiny();
        let serial = render(&run_with(&cfg, &ExpOpts::serial()));
        let parallel = render(&run_with(&cfg, &ExpOpts::serial().with_jobs(4)));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_is_a_declarative_sweep_spec() {
        let spec = tiny().sweep();
        assert_eq!(spec.cells().len(), 12, "4 routers x 3 backends");
        // The spec survives the spec-file format round trip — the grid
        // could be a committed .scn file.
        let reparsed = faas::SweepSpec::parse(&spec.render()).expect("renders valid spec");
        assert_eq!(reparsed, spec);
    }

    /// The CI-scale grid, in release mode only (slow-tests job).
    #[test]
    #[cfg_attr(not(feature = "slow-tests"), ignore = "enable the slow-tests feature")]
    fn quick_grid_serves_the_offered_load() {
        let cells = run(&ClusterBenchConfig::quick());
        for c in &cells {
            assert!(
                c.completed >= c.offered * 0.95,
                "{}/{} served {}/{}",
                c.router.key(),
                c.backend.name(),
                c.completed,
                c.offered
            );
        }
    }
}
