//! Figure 11: the N:1 vs 1:1 model trade-offs — cold-start latency
//! breakdown (a) and per-instance host memory footprint (b).

use faas::{microvm_cold_start, n_to_one_cold_start, ColdStartBreakdown};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::metrics::mean;
use sim_core::CostModel;
use workloads::FunctionKind;

use crate::table::TextTable;

/// One function's comparison.
pub struct Fig11Row {
    /// Function under test.
    pub kind: FunctionKind,
    /// 1:1 microVM cold start.
    pub one_to_one: ColdStartBreakdown,
    /// N:1 (Squeezy) cold start.
    pub n_to_one: ColdStartBreakdown,
    /// 1:1 per-instance host footprint (bytes).
    pub one_footprint: u64,
    /// N:1 marginal per-instance host footprint (bytes).
    pub n_footprint: u64,
}

/// The per-function sweep on the engine; the cold-start model is
/// deterministic, so it clamps to one trial.
struct Fig11Exp;

impl Experiment for Fig11Exp {
    type Point = FunctionKind;
    type Output = Fig11Row;

    fn points(&self) -> Vec<FunctionKind> {
        FunctionKind::ALL.to_vec()
    }

    fn run_trial(&self, &kind: &FunctionKind, _ctx: &mut TrialCtx) -> Fig11Row {
        let cost = CostModel::default();
        let (one, one_fp) = microvm_cold_start(kind, &cost).expect("1:1 runs");
        let (n, n_fp) = n_to_one_cold_start(kind, &cost).expect("N:1 runs");
        Fig11Row {
            kind,
            one_to_one: one,
            n_to_one: n,
            one_footprint: one_fp,
            n_footprint: n_fp,
        }
    }
}

/// Runs both cold-start paths for every Table-1 function.
pub fn run() -> Vec<Fig11Row> {
    run_with(&ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(opts: &ExpOpts) -> Vec<Fig11Row> {
    run_experiment(&Fig11Exp, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

/// Renders both subfigures.
pub fn render(rows: &[Fig11Row]) -> String {
    let mut a = TextTable::new(&[
        "Function",
        "Model",
        "VMM(ms)",
        "Container(ms)",
        "FuncInit(ms)",
        "Exec(ms)",
        "Total(s)",
    ]);
    for r in rows {
        for (label, b) in [("1:1", &r.one_to_one), ("N:1", &r.n_to_one)] {
            a.row(vec![
                r.kind.name().to_string(),
                label.to_string(),
                format!("{:.0}", b.vmm_delay.as_millis_f64()),
                format!("{:.0}", b.container_init.as_millis_f64()),
                format!("{:.0}", b.function_init.as_millis_f64()),
                format!("{:.0}", b.function_exec.as_millis_f64()),
                format!("{:.2}", b.total().as_secs_f64()),
            ]);
        }
    }
    let mut b = TextTable::new(&["Function", "1:1 (MiB)", "N:1 (MiB)", "Ratio"]);
    for r in rows {
        b.row(vec![
            r.kind.name().to_string(),
            format!("{}", r.one_footprint >> 20),
            format!("{}", r.n_footprint >> 20),
            format!("{:.2}x", r.one_footprint as f64 / r.n_footprint as f64),
        ]);
    }

    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.one_to_one.total().as_nanos() as f64 / r.n_to_one.total().as_nanos() as f64)
        .collect();
    let mean_speedup = mean(&speedups);
    let max_speedup = speedups.iter().copied().fold(0.0, f64::max);
    let fp_ratios: Vec<f64> = rows
        .iter()
        .map(|r| r.one_footprint as f64 / r.n_footprint as f64)
        .collect();
    let mean_fp = mean(&fp_ratios);
    let vmm_1to1 = mean(
        &rows
            .iter()
            .map(|r| r.one_to_one.vmm_fraction())
            .collect::<Vec<_>>(),
    );
    let vmm_n = mean(
        &rows
            .iter()
            .map(|r| r.n_to_one.vmm_fraction())
            .collect::<Vec<_>>(),
    );

    let mut out = String::from("Figure 11a: cold-start latency breakdown, 1:1 vs N:1\n");
    out.push_str(&a.render());
    out.push_str("\nFigure 11b: per-instance host memory footprint\n");
    out.push_str(&b.render());
    out.push_str(&format!(
        "\nN:1 cold start {mean_speedup:.2}x faster on average, up to {max_speedup:.2}x \
         (paper: 1.6x avg, up to 2.35x)\n\
         1:1 footprint {mean_fp:.2}x larger on average (paper: 2.53x)\n\
         VMM share of cold start: 1:1 {:.1}% (paper: 20.2%), N:1 {:.2}% (paper: 1.19%)\n",
        100.0 * vmm_1to1,
        100.0 * vmm_n,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_to_one_wins_on_both_axes() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.n_to_one.total() < r.one_to_one.total(),
                "{}: N:1 cold start faster",
                r.kind.name()
            );
            assert!(
                r.n_footprint < r.one_footprint,
                "{}: N:1 footprint smaller",
                r.kind.name()
            );
        }
    }

    #[test]
    fn average_ratios_near_paper() {
        let rows = run();
        let mean_speedup: f64 = rows
            .iter()
            .map(|r| r.one_to_one.total().as_nanos() as f64 / r.n_to_one.total().as_nanos() as f64)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(
            (1.2..2.6).contains(&mean_speedup),
            "cold-start speedup {mean_speedup:.2} (paper 1.6x)"
        );
        let mean_fp: f64 = rows
            .iter()
            .map(|r| r.one_footprint as f64 / r.n_footprint as f64)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(
            (1.8..3.5).contains(&mean_fp),
            "footprint ratio {mean_fp:.2} (paper 2.53x)"
        );
    }

    #[test]
    fn render_contains_both_subfigures() {
        let s = render(&run());
        assert!(s.contains("Figure 11a"));
        assert!(s.contains("Figure 11b"));
        assert!(s.contains("paper: 2.53x"));
    }
}
