//! Figure 10: end-to-end execution when host memory is restricted (the
//! paper uses ~70 % of the abundant-memory peak; we report the ~62 %
//! point where the paper's ordering is clearest — see EXPERIMENTS.md).
//! Scale-ups must wait for reclamation of evicted instances; slow
//! reclaim (vanilla virtio-mem) inflates tail latency, HarvestVM-opts
//! trades memory for speed, Squeezy keeps both bounded, and the §7
//! soft-memory extension (Squeezy+soft) additionally lets idle
//! instances donate memory without dying.

use std::collections::BTreeMap;

use faas::{BackendKind, Deployment, FaasSim, HarvestConfig, SimConfig, SimResult, VmSpec};
use sim_core::experiment::{mean_over, run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::metrics::geomean;
use sim_core::DetRng;
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig10Config {
    /// Trace duration.
    pub duration_s: f64,
    /// Per-function concurrency bound.
    pub concurrency: u32,
    /// Keep-alive window (short: the paper emulates heavy churn).
    pub keepalive_s: f64,
    /// Host capacity as a fraction of the abundant-memory peak.
    pub capacity_fraction: f64,
    /// virtio-mem reclaim deadline (ms).
    pub unplug_deadline_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig10Config {
    /// Paper-shaped configuration.
    pub fn paper() -> Self {
        Fig10Config {
            duration_s: 600.0,
            concurrency: 9,
            keepalive_s: 25.0,
            capacity_fraction: 0.62,
            unplug_deadline_ms: 250,
            seed: 10,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig10Config {
            duration_s: 240.0,
            concurrency: 5,
            keepalive_s: 18.0,
            capacity_fraction: 0.72,
            unplug_deadline_ms: 250,
            seed: 10,
        }
    }
}

/// Results for one backend run.
pub struct Fig10Run {
    /// Backend name ("Abundant Memory" for the unrestricted baseline).
    pub label: &'static str,
    /// The simulation results.
    pub result: SimResult,
    /// P99 per function (ms).
    pub p99_ms: BTreeMap<FunctionKind, f64>,
    /// Integrated host footprint (GiB·s).
    pub gib_seconds: f64,
    /// Completed requests (mean over trials).
    pub completed_mean: f64,
}

/// The complete figure: baseline plus three restricted backends.
pub struct Fig10Output {
    /// All runs, baseline first.
    pub runs: Vec<Fig10Run>,
    /// The abundant-memory peak host usage (bytes) — the normalization
    /// reference.
    pub abundant_peak_bytes: f64,
}

/// One trial's demand traces, all functions.
type Trace = Vec<(FunctionKind, Vec<f64>)>;

fn traces(cfg: &Fig10Config, rng: &DetRng) -> Trace {
    // Demand waves: every ~wave_period each function suddenly needs its
    // full concurrency, offset so waves overlap pairwise. Scale-ups are
    // *required* to serve the waves — exactly the pattern where slow
    // reclamation of the previous wave's (evicted) instances delays the
    // next wave (§6.2.2, Figure 2's churn emulated at small scale).
    let wave_period = 60.0;
    FunctionKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let mut frng = rng.derive(i as u64);
            let mut arrivals = Vec::new();
            let offset = i as f64 * wave_period / 4.0;
            let mut wave_start = 5.0 + offset;
            while wave_start < cfg.duration_s {
                // The wave: ~2x concurrency requests over ~3 s, then a
                // short tail keeping the instances busy.
                for k in 0..(cfg.concurrency * 2) {
                    arrivals.push(wave_start + k as f64 * 0.1 + frng.range_f64(0.0, 0.05));
                }
                let mut t = wave_start + 3.0;
                while t < wave_start + 12.0 {
                    arrivals.push(t);
                    t += frng.exp(cfg.concurrency as f64 * 0.5);
                }
                wave_start += wave_period + frng.range_f64(0.0, 8.0);
            }
            // Light background traffic.
            let bg = bursty_arrivals(
                &BurstyTraceConfig {
                    duration_s: cfg.duration_s,
                    base_rps: 0.1,
                    burst_rps: 0.5,
                    mean_burst_s: 10.0,
                    mean_idle_s: 60.0,
                },
                &mut frng,
            );
            arrivals.extend(bg);
            arrivals.retain(|&t| t < cfg.duration_s);
            arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (kind, arrivals)
        })
        .collect()
}

fn build_config(
    backend: BackendKind,
    capacity: u64,
    cfg: &Fig10Config,
    traces: &[(FunctionKind, Vec<f64>)],
    trial: u64,
) -> SimConfig {
    SimConfig {
        backend,
        harvest: HarvestConfig {
            // The slack buffer must cover the largest instance reservation
            // (else draws never hit) but stay a modest share of capacity —
            // the memory-for-latency trade HarvestVM makes (§6.2.2). Sizing
            // it off the instance reservation (not the capacity) keeps the
            // share modest at quick() scale too.
            buffer_bytes: {
                let largest = FunctionKind::ALL
                    .iter()
                    .map(|k| mem_types::align_up_to_block(k.profile().memory_limit.bytes()))
                    .max()
                    .unwrap_or(0);
                (2 * largest).min(capacity / 2)
            },
            // Scaled with the concurrency factor: a fixed count would
            // wipe out a quick()-sized pool entirely and tilt the
            // memory/latency trade away from the paper's shape.
            proactive_evictions: (cfg.concurrency / 4).max(1),
        },
        vms: traces
            .iter()
            .map(|(kind, arrivals)| VmSpec {
                deployments: vec![Deployment {
                    kind: *kind,
                    concurrency: cfg.concurrency,
                    arrivals: arrivals.clone(),
                }],
                vcpus: None,
            })
            .collect(),
        host_capacity: capacity,
        keepalive_s: cfg.keepalive_s,
        duration_s: cfg.duration_s,
        sample_period_s: 1.0,
        unplug_deadline_ms: cfg.unplug_deadline_ms,
        // The figure reports aggregate percentiles only: skip the
        // per-request points in the heaviest simulations.
        record_latency_points: false,
        seed: cfg.seed,
        trial,
    }
}

fn run_one(
    label: &'static str,
    backend: BackendKind,
    capacity: u64,
    cfg: &Fig10Config,
    tr: &[(FunctionKind, Vec<f64>)],
    trial: u64,
) -> Fig10Run {
    let sim = FaasSim::new(build_config(backend, capacity, cfg, tr, trial)).expect("boot");
    let mut result = sim.run();
    let p99: BTreeMap<FunctionKind, f64> = FunctionKind::ALL
        .iter()
        .map(|&k| (k, result.p99_ms(k)))
        .collect();
    let gib_seconds = result.gib_seconds();
    let completed_mean = result.completed as f64;
    Fig10Run {
        label,
        result,
        p99_ms: p99,
        gib_seconds,
        completed_mean,
    }
}

/// Phase 1 on the engine: the abundant-memory baseline, one point,
/// `trials` repetitions over independently derived traces.
struct AbundantExp<'a> {
    cfg: &'a Fig10Config,
    traces: &'a [Trace],
}

impl Experiment for AbundantExp<'_> {
    type Point = ();
    type Output = Fig10Run;

    fn points(&self) -> Vec<()> {
        vec![()]
    }

    fn trials(&self) -> u32 {
        self.traces.len() as u32
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, _point: &(), ctx: &mut TrialCtx) -> Fig10Run {
        run_one(
            "Abundant Memory",
            BackendKind::Squeezy,
            u64::MAX / 2,
            self.cfg,
            &self.traces[ctx.trial as usize],
            ctx.trial,
        )
    }
}

/// Phase 2 on the engine: the four restricted backends, each trial
/// capped at that trial's abundant peak × `capacity_fraction` and fed
/// that trial's traces, so every backend faces identical conditions.
struct RestrictedExp<'a> {
    cfg: &'a Fig10Config,
    traces: &'a [Trace],
    capacities: Vec<u64>,
}

impl Experiment for RestrictedExp<'_> {
    type Point = (&'static str, BackendKind);
    type Output = Fig10Run;

    fn points(&self) -> Vec<(&'static str, BackendKind)> {
        vec![
            ("Virtio-mem", BackendKind::VirtioMem),
            ("HarvestVM-opts", BackendKind::HarvestOpts),
            ("Squeezy", BackendKind::Squeezy),
            // Extension run (§7 soft memory): idle instances donate
            // their partitions under pressure instead of being evicted.
            ("Squeezy+soft", BackendKind::SqueezySoft),
        ]
    }

    fn trials(&self) -> u32 {
        self.traces.len() as u32
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, &(label, backend): &Self::Point, ctx: &mut TrialCtx) -> Fig10Run {
        let t = ctx.trial as usize;
        run_one(
            label,
            backend,
            self.capacities[t],
            self.cfg,
            &self.traces[t],
            ctx.trial,
        )
    }
}

/// Collapses per-trial runs of one backend: scalar metrics (P99s,
/// GiB·s) become trial means; the timeline and reclaim log keep trial
/// 0's deterministic artifact.
fn aggregate(mut trials: Vec<Fig10Run>) -> Fig10Run {
    let p99_ms: BTreeMap<FunctionKind, f64> = FunctionKind::ALL
        .iter()
        .map(|&k| (k, mean_over(&trials, |r| r.p99_ms[&k])))
        .collect();
    let gib_seconds = mean_over(&trials, |r| r.gib_seconds);
    let completed_mean = mean_over(&trials, |r| r.completed_mean);
    let mut first = trials.remove(0);
    first.p99_ms = p99_ms;
    first.gib_seconds = gib_seconds;
    first.completed_mean = completed_mean;
    first
}

/// Runs the baseline and the four restricted backends (the paper's
/// three plus the §7 soft-memory extension).
pub fn run(cfg: &Fig10Config) -> Fig10Output {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options: `opts.trials` repetitions per
/// backend (averaging out trace sampling noise), sharded over
/// `opts.jobs` workers.
pub fn run_with(cfg: &Fig10Config, opts: &ExpOpts) -> Fig10Output {
    let root = DetRng::new(cfg.seed);
    let tr: Vec<Trace> = (0..opts.trials.max(1) as u64)
        .map(|t| traces(cfg, &root.derive(t)))
        .collect();

    // Baseline: Squeezy resizing with abundant host memory. Its peak
    // usage calibrates each trial's restricted capacity.
    let abundant_trials = run_experiment(&AbundantExp { cfg, traces: &tr }, opts.effective_jobs())
        .pop()
        .expect("one point");
    let capacities: Vec<u64> = abundant_trials
        .iter()
        .map(|r| (r.result.host_usage.max_value() * cfg.capacity_fraction) as u64)
        .collect();
    let abundant = aggregate(abundant_trials);
    let peak = abundant.result.host_usage.max_value();

    let restricted = run_experiment(
        &RestrictedExp {
            cfg,
            traces: &tr,
            capacities,
        },
        opts.effective_jobs(),
    );
    let mut runs = vec![abundant];
    runs.extend(restricted.into_iter().map(aggregate));
    Fig10Output {
        runs,
        abundant_peak_bytes: peak,
    }
}

/// Renders normalized P99 latencies and memory footprints.
pub fn render(out: &Fig10Output) -> String {
    let baseline = &out.runs[0];
    let mut t = TextTable::new(&[
        "Method", "Html", "Cnn", "BFS", "Bert", "Geomean", "GiB*s", "Served",
    ]);
    for run in &out.runs {
        let mut ratios = Vec::new();
        let mut cells = vec![run.label.to_string()];
        for kind in FunctionKind::ALL {
            let base = baseline.p99_ms[&kind].max(1e-9);
            let r = run.p99_ms[&kind] / base;
            ratios.push(r.max(1e-9));
            cells.push(format!("{r:.2}"));
        }
        cells.push(format!("{:.2}", geomean(&ratios)));
        cells.push(format!("{:.0}", run.gib_seconds));
        cells.push(format!("{:.0}", run.completed_mean));
        t.row(cells);
    }
    let mut s = String::from(
        "Figure 10: normalized P99 latency under restricted host memory + integrated footprint\n",
    );
    s.push_str(&t.render());
    s.push_str(
        "(paper: virtio-mem 3.15x, HarvestVM-opts 1.36x, Squeezy 1.1x normalized P99;\n\
         Squeezy cuts GiB*s by 45%/42.5% vs HarvestVM-opts/virtio-mem)\n",
    );

    // The figure's right panel: memory utilization over time, normalized
    // to the abundant-memory peak.
    s.push_str("\nMemory utilization (% of abundant peak), sampled every 30 s:\n");
    let labels: Vec<&str> = out.runs[1..].iter().map(|r| r.label).collect();
    let mut header = vec!["Time(s)"];
    header.extend(&labels);
    let mut tl = TextTable::new(&header);
    let step = sim_core::SimDuration::secs(30);
    let series: Vec<Vec<(f64, f64)>> = out.runs[1..]
        .iter()
        .map(|r| r.result.host_usage.downsample(step))
        .collect();
    let rows_n = series.iter().map(|s| s.len()).min().unwrap_or(0);
    for i in 0..rows_n {
        let mut cells = vec![format!("{:.0}", series[0][i].0)];
        for s_j in &series {
            cells.push(format!(
                "{:.0}%",
                100.0 * s_j[i].1 / out.abundant_peak_bytes
            ));
        }
        tl.row(cells);
    }
    s.push_str(&tl.render());
    s
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;

    /// Shared 3-trial quick output: the four tests below read the same
    /// aggregate (25 simulations) instead of re-running it each.
    fn quick_out() -> &'static Fig10Output {
        static OUT: OnceLock<Fig10Output> = OnceLock::new();
        OUT.get_or_init(|| run_with(&Fig10Config::quick(), &ExpOpts::auto().with_trials(3)))
    }

    fn norm_geomean(out: &Fig10Output, label: &str) -> f64 {
        let baseline = &out.runs[0];
        let run = out.runs.iter().find(|r| r.label == label).unwrap();
        let ratios: Vec<f64> = FunctionKind::ALL
            .iter()
            .map(|k| (run.p99_ms[k] / baseline.p99_ms[k].max(1e-9)).max(1e-9))
            .collect();
        geomean(&ratios)
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn restricted_memory_hurts_slow_reclaimers() {
        let out = quick_out();
        let virtio = norm_geomean(out, "Virtio-mem");
        let harvest = norm_geomean(out, "HarvestVM-opts");
        let squeezy = norm_geomean(out, "Squeezy");
        // The paper's headline: Squeezy keeps tail latency bounded
        // (1.1x) while the virtio-mem based methods are penalized
        // (3.15x / 1.36x).
        assert!(
            squeezy < 1.25,
            "squeezy keeps tail latency bounded: {squeezy:.2}"
        );
        assert!(
            virtio > squeezy + 0.05,
            "virtio {virtio:.2} visibly above squeezy {squeezy:.2}"
        );
        assert!(
            harvest > squeezy + 0.05,
            "harvest {harvest:.2} visibly above squeezy {squeezy:.2}"
        );
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn squeezy_memory_not_above_harvest() {
        let out = quick_out();
        let get = |l: &str| out.runs.iter().find(|r| r.label == l).unwrap();
        let squeezy = get("Squeezy");
        let harvest = get("HarvestVM-opts");
        let abundant = get("Abundant Memory");
        // Squeezy never reserves slack memory: per request it serves,
        // it cannot cost more than HarvestVM-opts. (The paper's full
        // 45 % separation needs its production-scale churn; at quick()
        // scale the two sit at parity. The comparison is per completed
        // request because HarvestVM-opts sheds load under restriction —
        // raw GiB·s would credit it for work it refused. 3-trial means
        // hold the measured ratio within ±1 %, so the bound is 1.03 —
        // down from the 1.08 raw-footprint bound PR 1 had to allow.)
        let per_req = |r: &Fig10Run| r.gib_seconds / r.completed_mean.max(1.0);
        assert!(
            per_req(squeezy) <= per_req(harvest) * 1.03,
            "squeezy {:.3} GiB*s/req vs harvest {:.3} GiB*s/req",
            per_req(squeezy),
            per_req(harvest)
        );
        assert!(
            squeezy.gib_seconds < abundant.gib_seconds,
            "restriction caps the footprint"
        );
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn soft_extension_tracks_squeezy_tail_latency() {
        let out = quick_out();
        let squeezy = norm_geomean(out, "Squeezy");
        let soft = norm_geomean(out, "Squeezy+soft");
        // Soft memory must not regress the headline result: bounded
        // tail latency under restriction.
        assert!(
            soft < squeezy * 1.3 + 0.2,
            "soft {soft:.2} near squeezy {squeezy:.2}"
        );
        // And it reclaims idle memory without migrations.
        let run = out.runs.iter().find(|r| r.label == "Squeezy+soft").unwrap();
        let totals: u64 = run.result.reclaims.iter().map(|r| r.pages_migrated).sum();
        assert_eq!(totals, 0);
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "heavy simulation; enable with --features slow-tests"
    )]
    fn all_backends_complete_requests() {
        let out = quick_out();
        let expect = out.runs[0].completed_mean;
        for r in &out.runs[1..] {
            // HarvestVM-opts legitimately sheds a slice of the offered
            // load under restriction (§6.2.2's aggressive reclamation);
            // the fast reclaimers must serve essentially everything.
            let floor = if r.label == "HarvestVM-opts" {
                0.85
            } else {
                0.95
            };
            assert!(
                r.completed_mean >= expect * floor,
                "{}: {:.0} vs baseline {:.0}",
                r.label,
                r.completed_mean,
                expect
            );
        }
    }
}
