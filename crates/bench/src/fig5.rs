//! Figure 5: average latency to reclaim memory of different sizes from a
//! memhog-loaded guest, broken into zeroing / migration / VM exits /
//! rest, for Balloon, vanilla virtio-mem and Squeezy.

use mem_types::MIB;
use sim_core::experiment::{run_reduced, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, DetRng, LatencyBreakdown};

use crate::setup::{FarmKind, MemhogFarm};
use crate::table::TextTable;

/// The reclamation methods under comparison.
const METHODS: [&str; 3] = ["Balloon", "Virtio-mem", "Squeezy"];

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Reclaim sizes to sweep (the paper uses 128 MiB - 2 GiB).
    pub sizes_mib: Vec<u64>,
    /// Concurrent memhog instances (paper: 32 on a 32:1 VM).
    pub instances: u32,
    /// Footprint-scattering churn rounds during warm-up.
    pub churn_rounds: u32,
}

impl Fig5Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig5Config {
            sizes_mib: vec![128, 256, 512, 1024, 2048],
            instances: 32,
            churn_rounds: 2,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig5Config {
            sizes_mib: vec![128, 256],
            instances: 8,
            churn_rounds: 1,
        }
    }
}

/// One bar of the figure.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Reclaimed memory size (MiB).
    pub size_mib: u64,
    /// Reclamation method.
    pub method: &'static str,
    /// Average per-step latency breakdown.
    pub breakdown: LatencyBreakdown,
}

/// The `sizes × methods` sweep on the engine; trials re-churn the farm
/// from independent streams and the breakdowns are averaged. The farm
/// stream is derived from `(size, trial)` only — NOT the method — so
/// the three methods of one size are always measured on an identically
/// churned farm (the paired comparison the figure reports).
struct Fig5Exp<'a> {
    cfg: &'a Fig5Config,
    trials: u32,
}

impl Experiment for Fig5Exp<'_> {
    type Point = (u64, &'static str);
    type Output = LatencyBreakdown;

    fn points(&self) -> Vec<(u64, &'static str)> {
        self.cfg
            .sizes_mib
            .iter()
            .flat_map(|&size| METHODS.iter().map(move |&m| (size, m)))
            .collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        crate::setup::CHURN_SEED
    }

    fn run_trial(&self, &(size_mib, method): &Self::Point, ctx: &mut TrialCtx) -> LatencyBreakdown {
        // Points are laid out sizes-major, so the size index is the
        // point index with the method dimension divided out.
        let size_idx = (ctx.point / METHODS.len()) as u64;
        let mut rng = DetRng::new(self.seed()).derive(size_idx).derive(ctx.trial);
        run_method(
            method,
            size_mib * MIB,
            self.cfg,
            &CostModel::default(),
            &mut rng,
        )
    }
}

/// Runs the experiment: for each size and method, fill a VM with
/// memhogs, kill them iteratively, reclaim the killed instance's size at
/// every step, and average the latency across steps (and trials).
pub fn run(cfg: &Fig5Config) -> Vec<Fig5Row> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig5Config, opts: &ExpOpts) -> Vec<Fig5Row> {
    let exp = Fig5Exp {
        cfg,
        trials: opts.trials,
    };
    let points = exp.points();
    let means = run_reduced(&exp, opts.effective_jobs(), |trials| {
        let mut acc = LatencyBreakdown::default();
        for b in &trials {
            acc.accumulate(b);
        }
        acc.scale_down(trials.len() as u64)
    });
    points
        .into_iter()
        .zip(means)
        .map(|((size_mib, method), breakdown)| Fig5Row {
            size_mib,
            method,
            breakdown,
        })
        .collect()
}

fn run_method(
    method: &str,
    bytes: u64,
    cfg: &Fig5Config,
    cost: &CostModel,
    rng: &mut DetRng,
) -> LatencyBreakdown {
    let kind = if method == "Squeezy" {
        FarmKind::Squeezy
    } else {
        FarmKind::Vanilla
    };
    let mut farm =
        MemhogFarm::build_seeded(kind, cfg.instances, bytes, cfg.churn_rounds, cost, rng);
    let mut acc = LatencyBreakdown::default();
    let steps = cfg.instances as usize;
    for k in 0..steps {
        farm.kill(k);
        let step = match method {
            "Balloon" => {
                let r = farm
                    .vm
                    .balloon_reclaim(&mut farm.host, bytes, cost)
                    .expect("freed memory available");
                r.breakdown
            }
            "Virtio-mem" => {
                let r = farm
                    .vm
                    .unplug(
                        &mut farm.host,
                        mem_types::align_up_to_block(bytes),
                        None,
                        cost,
                    )
                    .expect("unplug");
                r.breakdown
            }
            "Squeezy" => {
                let sq = farm.squeezy.as_mut().expect("squeezy farm");
                let (_, r) = sq
                    .unplug_partition(&mut farm.vm, &mut farm.host, cost)
                    .expect("freed partition");
                r.breakdown
            }
            _ => unreachable!(),
        };
        acc.accumulate(&step);
    }
    acc.scale_down(steps as u64)
}

/// Renders the figure as a text table (ms per bucket).
pub fn render(rows: &[Fig5Row]) -> String {
    let mut t = TextTable::new(&[
        "Size",
        "Method",
        "Total(ms)",
        "Zeroing",
        "Migration",
        "VMExits",
        "Rest",
    ]);
    for r in rows {
        t.row(vec![
            format!("{} MiB", r.size_mib),
            r.method.to_string(),
            format!("{:.1}", r.breakdown.total().as_millis_f64()),
            format!("{:.1}", r.breakdown.zeroing.as_millis_f64()),
            format!("{:.1}", r.breakdown.migration.as_millis_f64()),
            format!("{:.1}", r.breakdown.vmexits.as_millis_f64()),
            format!("{:.1}", r.breakdown.rest.as_millis_f64()),
        ]);
    }
    let mut out = String::from(
        "Figure 5: average latency (ms) to reclaim memory from a memhog-loaded guest\n",
    );
    out.push_str(&t.render());
    out.push_str(&summary(rows));
    out
}

/// Headline ratios the paper reports in §6.1.1.
pub fn summary(rows: &[Fig5Row]) -> String {
    let mut balloon_total = 0.0;
    let mut virtio_total = 0.0;
    let mut squeezy_total = 0.0;
    let mut virtio_migration = 0.0;
    let mut virtio_zeroing = 0.0;
    let mut balloon_exits = 0.0;
    let mut n = 0.0;
    for r in rows {
        let total = r.breakdown.total().as_millis_f64();
        match r.method {
            "Balloon" => {
                balloon_total += total;
                balloon_exits += r.breakdown.fractions()[2];
                n += 1.0;
            }
            "Virtio-mem" => {
                virtio_total += total;
                let f = r.breakdown.fractions();
                virtio_zeroing += f[0];
                virtio_migration += f[1];
            }
            "Squeezy" => squeezy_total += total,
            _ => {}
        }
    }
    format!(
        "virtio-mem vs balloon: {:.2}x faster (paper: 2.34x)\n\
         Squeezy vs virtio-mem: {:.1}x faster (paper: 10.9x)\n\
         virtio-mem migration share: {:.1}% (paper: 61.5%)\n\
         virtio-mem zeroing share: {:.1}% (paper: 24%)\n\
         balloon VM-exit share: {:.1}% (paper: 81%)\n",
        balloon_total / virtio_total,
        virtio_total / squeezy_total,
        100.0 * virtio_migration / n,
        100.0 * virtio_zeroing / n,
        100.0 * balloon_exits / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_ordering() {
        let rows = run(&Fig5Config::quick());
        assert_eq!(rows.len(), 6);
        for size in [128u64, 256] {
            let get = |m: &str| {
                rows.iter()
                    .find(|r| r.size_mib == size && r.method == m)
                    .map(|r| r.breakdown.total())
                    .unwrap()
            };
            let balloon = get("Balloon");
            let virtio = get("Virtio-mem");
            let squeezy = get("Squeezy");
            assert!(balloon > virtio, "{size}: balloon slowest");
            assert!(virtio > squeezy, "{size}: squeezy fastest");
        }
    }

    #[test]
    fn virtio_breakdown_is_migration_dominated() {
        let rows = run(&Fig5Config::quick());
        let v = rows
            .iter()
            .find(|r| r.size_mib == 256 && r.method == "Virtio-mem")
            .unwrap();
        let f = v.breakdown.fractions();
        assert!(f[1] > 0.4, "migration share {:.2}", f[1]);
        assert!(f[0] > 0.1, "zeroing share {:.2}", f[0]);
    }

    #[test]
    fn squeezy_has_no_migration_or_zeroing() {
        let rows = run(&Fig5Config::quick());
        for r in rows.iter().filter(|r| r.method == "Squeezy") {
            assert_eq!(r.breakdown.migration.as_nanos(), 0);
            assert_eq!(r.breakdown.zeroing.as_nanos(), 0);
        }
    }

    #[test]
    fn render_produces_table() {
        let rows = run(&Fig5Config::quick());
        let s = render(&rows);
        assert!(s.contains("Figure 5"));
        assert!(s.contains("Squeezy"));
        assert!(s.contains("paper: 10.9x"));
    }
}
