//! Figure 2: instance churn of the 10 most popular functions over one
//! hour — thousands of creations and evictions per minute motivate agile
//! N:1 resizing.

use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use workloads::{analyze_churn, zipf_function_traces, ChurnResult};

use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig2Config {
    /// Number of top functions analysed (paper: 10).
    pub functions: usize,
    /// Window length in seconds (paper: one hour).
    pub duration_s: f64,
    /// Aggregate request rate across the functions.
    pub total_rps: f64,
    /// Idle eviction window (paper: 5 minutes).
    pub keepalive_s: f64,
    /// Mean execution time per request.
    pub exec_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Fig2Config {
    /// Configuration matching the paper's analysis scale.
    pub fn paper() -> Self {
        Fig2Config {
            functions: 10,
            duration_s: 3600.0,
            total_rps: 400.0,
            keepalive_s: 300.0,
            exec_s: 1.0,
            seed: 2021,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig2Config {
            functions: 5,
            duration_s: 600.0,
            total_rps: 40.0,
            keepalive_s: 30.0,
            exec_s: 1.0,
            seed: 2021,
        }
    }
}

/// The churn analysis as a one-point sweep on the engine: the output is
/// a single per-minute timeline, so it clamps to one trial.
struct Fig2Exp<'a> {
    cfg: &'a Fig2Config,
}

impl Experiment for Fig2Exp<'_> {
    type Point = ();
    type Output = ChurnResult;

    fn points(&self) -> Vec<()> {
        vec![()]
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn run_trial(&self, _point: &(), ctx: &mut TrialCtx) -> ChurnResult {
        let cfg = self.cfg;
        let traces = zipf_function_traces(
            cfg.functions,
            cfg.duration_s,
            cfg.total_rps,
            1.0,
            &mut ctx.rng,
        );
        let exec = vec![cfg.exec_s; cfg.functions];
        analyze_churn(&traces, &exec, cfg.keepalive_s, cfg.duration_s)
    }
}

/// Runs the churn analysis over synthesized Azure-like traces.
pub fn run(cfg: &Fig2Config) -> ChurnResult {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig2Config, opts: &ExpOpts) -> ChurnResult {
    run_experiment(&Fig2Exp { cfg }, opts.effective_jobs())
        .remove(0)
        .remove(0)
}

/// Renders per-minute creations/evictions.
pub fn render(result: &ChurnResult) -> String {
    let mut t = TextTable::new(&["Minute", "Creations", "Evictions"]);
    for (m, c) in result.per_minute.iter().enumerate() {
        t.row(vec![
            format!("{m}"),
            format!("{}", c.creations),
            format!("{}", c.evictions),
        ]);
    }
    let mut out = String::from(
        "Figure 2: instance creations/evictions per minute (top functions, synthetic Azure-like load)\n",
    );
    out.push_str(&t.render());
    out.push_str(&format!(
        "total: {} creations, {} evictions; peak {} creations/min \
         (paper: thousands per minute at production scale)\n",
        result.total_creations(),
        result.total_evictions(),
        result.peak_creations()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_substantial_and_balanced() {
        let r = run(&Fig2Config::quick());
        assert!(r.total_creations() > 20, "{}", r.total_creations());
        // Evictions trail creations by at most the live pool at the end.
        assert!(r.total_evictions() <= r.total_creations());
        assert!(r.total_evictions() > r.total_creations() / 4);
    }

    #[test]
    fn paper_scale_reaches_hundreds_per_minute() {
        let r = run(&Fig2Config::paper());
        assert!(
            r.peak_creations() > 100,
            "peak {} creations/min",
            r.peak_creations()
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&Fig2Config::quick());
        let b = run(&Fig2Config::quick());
        assert_eq!(a.total_creations(), b.total_creations());
        assert_eq!(a.per_minute.len(), b.per_minute.len());
    }
}
