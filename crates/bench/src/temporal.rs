//! Ablation: temporal segregation of invocation memory (§7, FaaSMem).
//!
//! With instance-granular Squeezy (the paper's design), scratch memory
//! a function allocates *during* an invocation is freed in the guest
//! when the invocation ends — but the host keeps backing it until the
//! whole instance is evicted (Figure 1's guest/host gap, at partition
//! scale). Temporal segregation plugs the scratch region per invocation
//! and instantly unplugs it after, so the host holds only the base
//! footprint between invocations.
//!
//! For each Table-1 function the ablation measures, on the real stack:
//!
//! * `idle_mib` — host memory held while the instance sits warm between
//!   invocations;
//! * `invoke_overhead_ms` — extra latency per invocation (ephemeral
//!   plug + fresh nested faults on scratch, vs. refaulting
//!   already-backed memory).

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB, PAGE_SIZE};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, SimDuration};
use squeezy::{FlexManager, TemporalInstance};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::FunctionKind;

use crate::table::TextTable;

/// Memory layout policy under comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// Paper design: one partition per instance; scratch stays
    /// host-backed between invocations.
    Instance,
    /// §7 + FaaSMem: scratch partition plugged per invocation.
    Invocation,
}

impl Granularity {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Instance => "per-instance",
            Granularity::Invocation => "per-invocation",
        }
    }
}

/// One measured row.
#[derive(Clone, Copy, Debug)]
pub struct TemporalRow {
    /// Function under test.
    pub kind: FunctionKind,
    /// Reclamation granularity.
    pub granularity: Granularity,
    /// Host memory held between invocations (MiB).
    pub idle_mib: f64,
    /// Mean per-invocation latency attributable to memory management
    /// (faults + plug/unplug), over `rounds` invocations (ms).
    pub invoke_mm_ms: f64,
}

/// Scratch fraction of the anon working set allocated per invocation.
const SCRATCH_NUM: u64 = 6;
const SCRATCH_DEN: u64 = 10;

/// The `functions × granularities` grid on the engine; the invocation
/// cycle is deterministic, so it clamps to one trial.
struct TemporalExp;

impl Experiment for TemporalExp {
    type Point = (FunctionKind, Granularity);
    type Output = TemporalRow;

    fn points(&self) -> Vec<(FunctionKind, Granularity)> {
        FunctionKind::ALL
            .into_iter()
            .flat_map(|k| [(k, Granularity::Instance), (k, Granularity::Invocation)])
            .collect()
    }

    fn run_trial(&self, &(kind, granularity): &Self::Point, _ctx: &mut TrialCtx) -> TemporalRow {
        measure(kind, granularity, 5, &CostModel::default())
    }
}

/// Runs the ablation: every function × both granularities, 5 rounds.
pub fn run() -> Vec<TemporalRow> {
    run_with(&ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(opts: &ExpOpts) -> Vec<TemporalRow> {
    run_experiment(&TemporalExp, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

fn boot(cost: &CostModel) -> (Vm, HostMemory, FlexManager) {
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 512 * MIB,
                hotplug_bytes: 8 * GIB,
                kernel_bytes: 128 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )
    .expect("host fits");
    let flex = FlexManager::install(&mut vm);
    let _ = cost;
    (vm, host, flex)
}

fn measure(
    kind: FunctionKind,
    granularity: Granularity,
    rounds: u32,
    cost: &CostModel,
) -> TemporalRow {
    let profile = kind.profile();
    let anon = profile.anon_pages();
    let scratch = anon * SCRATCH_NUM / SCRATCH_DEN;
    let base = anon - scratch;
    let base_bytes = mem_types::align_up_to_block(base * PAGE_SIZE);
    let scratch_bytes = mem_types::align_up_to_block(scratch * PAGE_SIZE);

    let (mut vm, mut host, mut flex) = boot(cost);
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);

    let mut invoke = SimDuration::ZERO;
    let mut idle_rss = 0u64;
    match granularity {
        Granularity::Instance => {
            // One partition sized for base + scratch.
            let total = base_bytes + scratch_bytes;
            let (id, _) = flex
                .create(&mut vm, total, total, cost)
                .expect("layout fits");
            flex.attach(&mut vm, id, pid).expect("attach");
            vm.touch_anon(&mut host, pid, base, cost)
                .expect("base fits");
            for _ in 0..rounds {
                let c = vm.touch_anon(&mut host, pid, scratch, cost).expect("fits");
                invoke += c.latency;
                // Invocation ends: guest frees scratch, host keeps it.
                vm.guest.free_anon(pid, scratch).expect("alive");
                idle_rss = vm.host_rss();
            }
        }
        Granularity::Invocation => {
            let (mut inst, _) =
                TemporalInstance::create(&mut flex, &mut vm, pid, base_bytes, scratch_bytes, cost)
                    .expect("layout fits");
            vm.touch_anon(&mut host, pid, base, cost)
                .expect("base fits");
            for _ in 0..rounds {
                if let Some(plug) = inst
                    .begin_invocation(&mut flex, &mut vm, cost)
                    .expect("scratch span reserved")
                {
                    invoke += plug.latency();
                }
                let c = vm.touch_anon(&mut host, pid, scratch, cost).expect("fits");
                invoke += c.latency;
                if let Some(unplug) = inst
                    .end_invocation(&mut flex, &mut vm, &mut host, cost)
                    .expect("drained")
                {
                    invoke += unplug.latency();
                }
                idle_rss = vm.host_rss();
            }
        }
    }

    TemporalRow {
        kind,
        granularity,
        idle_mib: idle_rss as f64 / MIB as f64,
        invoke_mm_ms: invoke.as_millis_f64() / rounds as f64,
    }
}

/// Renders the ablation.
pub fn render(rows: &[TemporalRow]) -> String {
    let mut t = TextTable::new(&["Function", "Granularity", "Idle(MiB)", "MM-per-invoke(ms)"]);
    for r in rows {
        t.row(vec![
            r.kind.name().to_string(),
            r.granularity.name().to_string(),
            format!("{:.0}", r.idle_mib),
            format!("{:.1}", r.invoke_mm_ms),
        ]);
    }
    let mut out = String::from(
        "Ablation: temporal segregation — reclaiming at invocation granularity (§7, FaaSMem)\n",
    );
    out.push_str(&t.render());
    // Average idle saving.
    let mut saved = 0.0;
    let mut n = 0.0;
    for kind in FunctionKind::ALL {
        let inst = rows
            .iter()
            .find(|r| r.kind == kind && r.granularity == Granularity::Instance)
            .expect("grid");
        let invo = rows
            .iter()
            .find(|r| r.kind == kind && r.granularity == Granularity::Invocation)
            .expect("grid");
        saved += (inst.idle_mib - invo.idle_mib) / inst.idle_mib;
        n += 1.0;
    }
    out.push_str(&format!(
        "per-invocation reclamation cuts idle host memory by {:.0}% on average\n",
        100.0 * saved / n,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_granularity_slims_idle_footprint() {
        let rows = run();
        for kind in FunctionKind::ALL {
            let inst = rows
                .iter()
                .find(|r| r.kind == kind && r.granularity == Granularity::Instance)
                .unwrap();
            let invo = rows
                .iter()
                .find(|r| r.kind == kind && r.granularity == Granularity::Invocation)
                .unwrap();
            assert!(
                invo.idle_mib < inst.idle_mib * 0.75,
                "{kind:?}: idle {} vs {}",
                invo.idle_mib,
                inst.idle_mib
            );
            // The per-invocation price is bounded (plug + refaults).
            assert!(
                invo.invoke_mm_ms < inst.invoke_mm_ms + 300.0,
                "{kind:?}: overhead {} vs {}",
                invo.invoke_mm_ms,
                inst.invoke_mm_ms
            );
        }
    }

    #[test]
    fn render_reports_saving() {
        let s = render(&run());
        assert!(s.contains("per-invocation reclamation cuts idle host memory"));
        assert!(s.contains("per-instance"));
    }
}
