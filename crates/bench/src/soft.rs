//! Ablation: soft-memory partitions for keep-alive instances (§7).
//!
//! Keep-alive ties down an idle instance's memory for the whole window;
//! eviction frees the memory but pays a full cold start on the next
//! invocation. The paper's §7 proposes a third point: mark the idle
//! instance's partition *soft* and let the hypervisor revoke it under
//! pressure — the instance (container + runtime) survives, only its
//! anonymous state is rebuilt on the next invocation.
//!
//! For every Table-1 function this ablation measures, on the real stack:
//!
//! * `reclaim_ms` — time to release the idle instance's memory
//!   (0 for firm keep-alive, which releases nothing);
//! * `released_mib` — how much host memory the idle policy returns;
//! * `restart_ms` — latency of the next invocation's start phase
//!   (warm wake, soft-cold rebuild, or full cold start).

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB};
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::{CostModel, SimDuration};
use squeezy::{SoftWake, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::FunctionKind;

use crate::table::TextTable;

/// The idle-instance policies under comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IdlePolicy {
    /// Paper baseline: keep the instance and its memory (warm start).
    KeepAliveFirm,
    /// Evict the instance, unplug its partition (full cold start).
    Evict,
    /// §7 soft memory: revoke the partition, keep the instance
    /// (soft-cold start: re-plug + rebuild anonymous state).
    Soft,
    /// Related work: swap the idle working set to SSD (state preserved,
    /// slow synchronous swap-ins on restart).
    SwapDisk,
    /// Related work: swap into a compressed in-memory pool
    /// (zswap/frontswap): fast restore, partial memory saving.
    SwapCompressed,
}

impl IdlePolicy {
    /// All policies, in presentation order.
    pub const ALL: [IdlePolicy; 5] = [
        IdlePolicy::KeepAliveFirm,
        IdlePolicy::Evict,
        IdlePolicy::Soft,
        IdlePolicy::SwapDisk,
        IdlePolicy::SwapCompressed,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IdlePolicy::KeepAliveFirm => "keep-alive",
            IdlePolicy::Evict => "evict",
            IdlePolicy::Soft => "soft",
            IdlePolicy::SwapDisk => "swap-disk",
            IdlePolicy::SwapCompressed => "swap-zpool",
        }
    }
}

/// One measured row.
#[derive(Clone, Copy, Debug)]
pub struct SoftRow {
    /// Function under test.
    pub kind: FunctionKind,
    /// Idle policy under test.
    pub policy: IdlePolicy,
    /// Time to release the idle instance's memory (ms).
    pub reclaim_ms: f64,
    /// Host memory released while idle (MiB).
    pub released_mib: f64,
    /// Start latency of the next invocation (ms).
    pub restart_ms: f64,
}

/// The `functions × policies` grid on the engine; the warm/idle/restart
/// cycle is deterministic, so it clamps to one trial.
struct SoftExp;

impl Experiment for SoftExp {
    type Point = (FunctionKind, IdlePolicy);
    type Output = SoftRow;

    fn points(&self) -> Vec<(FunctionKind, IdlePolicy)> {
        FunctionKind::ALL
            .into_iter()
            .flat_map(|k| IdlePolicy::ALL.into_iter().map(move |p| (k, p)))
            .collect()
    }

    fn run_trial(&self, &(kind, policy): &Self::Point, _ctx: &mut TrialCtx) -> SoftRow {
        measure(kind, policy, &CostModel::default())
    }
}

/// Runs the ablation over every Table-1 function × policy.
pub fn run() -> Vec<SoftRow> {
    run_with(&ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(opts: &ExpOpts) -> Vec<SoftRow> {
    run_experiment(&SoftExp, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

/// Measures one function × policy cycle: warm instance → idle → restart.
fn measure(kind: FunctionKind, policy: IdlePolicy, cost: &CostModel) -> SoftRow {
    let profile = kind.profile();
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 512 * MIB,
                hotplug_bytes: 8 * GIB,
                kernel_bytes: 128 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )
    .expect("host fits");
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: profile.memory_limit.bytes(),
            shared_bytes: mem_types::align_up_to_block(profile.deps_bytes + profile.rootfs_bytes),
            concurrency: 2,
        },
        cost,
    )
    .expect("layout fits");

    // Warm instance: plug, attach, fault rootfs + deps (shared
    // partition, cached for later instances) + anon (private).
    sq.plug_partition(&mut vm, cost).expect("partition");
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.attach(&mut vm, pid).expect("attach");
    vm.touch_file(&mut host, kind.rootfs_file(), profile.rootfs_pages(), cost)
        .expect("rootfs fits");
    vm.touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)
        .expect("deps fit");
    vm.touch_anon(&mut host, pid, profile.anon_pages(), cost)
        .expect("anon fits");

    let rss_warm = vm.host_rss();
    let used_warm = host.used_bytes();
    let mut swap_dev = swap::SwapDevice::new(match policy {
        IdlePolicy::SwapCompressed => swap::SwapBackend::Compressed { retain_ratio: 0.4 },
        _ => swap::SwapBackend::Disk,
    });

    // Go idle under the policy.
    let (reclaim, released) = match policy {
        IdlePolicy::KeepAliveFirm => (SimDuration::ZERO, 0),
        IdlePolicy::Evict => {
            vm.guest.exit_process(pid).expect("alive");
            sq.detach(pid).expect("attached");
            let (_, report) = sq
                .unplug_partition(&mut vm, &mut host, cost)
                .expect("free partition");
            (report.latency(), rss_warm - vm.host_rss())
        }
        IdlePolicy::Soft => {
            sq.mark_soft(pid).expect("attached");
            let reports = sq
                .revoke_soft(&mut vm, &mut host, usize::MAX, cost)
                .expect("revocable");
            (reports[0].1.latency(), rss_warm - vm.host_rss())
        }
        IdlePolicy::SwapDisk | IdlePolicy::SwapCompressed => {
            let report = swap_dev
                .swap_out(&mut vm, &mut host, pid, profile.anon_pages(), cost)
                .expect("swappable");
            // Compressed pools retain a share: count the *net* release.
            (report.latency, used_warm - host.used_bytes())
        }
    };

    // Next invocation arrives: restart under the policy.
    let restart = match policy {
        IdlePolicy::KeepAliveFirm => {
            // Warm start: wake the instance, nothing to rebuild.
            assert_eq!(sq.mark_firm(pid).expect("attached"), SoftWake::Warm);
            SqueezyManager::syscall_cost(cost)
        }
        IdlePolicy::Evict => {
            // Full cold start: plug, new container, runtime + function
            // init, anon fault-in. Deps stay cached in the shared
            // partition (the N:1 advantage survives eviction).
            let (_, plug) = sq.plug_partition(&mut vm, cost).expect("partition");
            let pid2 = vm.guest.spawn_process(AllocPolicy::MovableDefault);
            sq.attach(&mut vm, pid2).expect("attach");
            let rootfs = vm
                .touch_file(&mut host, kind.rootfs_file(), profile.rootfs_pages(), cost)
                .expect("rootfs fits");
            let deps = vm
                .touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)
                .expect("deps cached");
            let anon = vm
                .touch_anon(&mut host, pid2, profile.anon_pages(), cost)
                .expect("anon fits");
            plug.latency()
                + rootfs.latency
                + deps.latency
                + anon.latency
                + SimDuration::from_secs_f64(
                    (profile.container_init_cpu_s + profile.function_init_cpu_s)
                        / profile.vcpu_shares.min(1.0),
                )
        }
        IdlePolicy::Soft => {
            // Soft-cold start: the wake discovers the revocation,
            // re-plugs, and rebuilds only the anonymous state; the
            // container and runtime process survived.
            assert_eq!(sq.mark_firm(pid).expect("attached"), SoftWake::NeedsReplug);
            let plug = sq.replug(&mut vm, pid, cost).expect("revoked");
            let deps = vm
                .touch_file(&mut host, kind.deps_file(), profile.deps_pages(), cost)
                .expect("deps cached");
            let anon = vm
                .touch_anon(&mut host, pid, profile.anon_pages(), cost)
                .expect("anon fits");
            plug.latency()
                + deps.latency
                + anon.latency
                + SimDuration::from_secs_f64(
                    profile.function_init_cpu_s / profile.vcpu_shares.min(1.0),
                )
        }
        IdlePolicy::SwapDisk | IdlePolicy::SwapCompressed => {
            // State preserved: restart is the major-fault storm that
            // pulls the working set back, nothing to rebuild.
            let report = swap_dev
                .swap_in(&mut vm, &mut host, pid, profile.anon_pages(), cost)
                .expect("held by the device");
            report.latency
        }
    };

    SoftRow {
        kind,
        policy,
        reclaim_ms: reclaim.as_millis_f64(),
        released_mib: released as f64 / MIB as f64,
        restart_ms: restart.as_millis_f64(),
    }
}

/// Renders the ablation as a text table plus a summary line.
pub fn render(rows: &[SoftRow]) -> String {
    let mut t = TextTable::new(&[
        "Function",
        "Policy",
        "Reclaim(ms)",
        "Released(MiB)",
        "Restart(ms)",
    ]);
    for r in rows {
        t.row(vec![
            r.kind.name().to_string(),
            r.policy.name().to_string(),
            format!("{:.0}", r.reclaim_ms),
            format!("{:.0}", r.released_mib),
            format!("{:.0}", r.restart_ms),
        ]);
    }
    let mut out = String::from("Ablation: soft-memory partitions for keep-alive instances (§7)\n");
    out.push_str(&t.render());
    // Geomean speedup of soft restart over evict restart.
    let mut ratio = 1.0;
    let mut n = 0;
    for kind in FunctionKind::ALL {
        let evict = rows
            .iter()
            .find(|r| r.kind == kind && r.policy == IdlePolicy::Evict)
            .expect("complete grid");
        let soft = rows
            .iter()
            .find(|r| r.kind == kind && r.policy == IdlePolicy::Soft)
            .expect("complete grid");
        ratio *= evict.restart_ms / soft.restart_ms;
        n += 1;
    }
    out.push_str(&format!(
        "soft restart is {:.2}x faster than evict cold start (geomean) \
         while releasing the same idle memory\n",
        ratio.powf(1.0 / n as f64),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_types::PAGE_SIZE;

    #[test]
    fn soft_releases_like_evict_but_restarts_faster() {
        let rows = run();
        for kind in FunctionKind::ALL {
            let get = |p: IdlePolicy| {
                *rows
                    .iter()
                    .find(|r| r.kind == kind && r.policy == p)
                    .unwrap()
            };
            let firm = get(IdlePolicy::KeepAliveFirm);
            let evict = get(IdlePolicy::Evict);
            let soft = get(IdlePolicy::Soft);
            // Firm holds everything; evict and soft release the
            // instance's private footprint.
            assert_eq!(firm.released_mib, 0.0);
            let anon_mib = kind.profile().anon_pages() as f64 * PAGE_SIZE as f64 / MIB as f64;
            assert!(
                evict.released_mib >= anon_mib,
                "{kind:?} evict releases anon"
            );
            assert!(soft.released_mib >= anon_mib, "{kind:?} soft releases anon");
            // Restart order: firm < soft < evict.
            assert!(firm.restart_ms < soft.restart_ms);
            assert!(
                soft.restart_ms < evict.restart_ms,
                "{kind:?}: soft {} vs evict {}",
                soft.restart_ms,
                evict.restart_ms
            );
            // Reclaim itself is instant for both reclaiming policies.
            assert!(soft.reclaim_ms < 200.0);
            assert!(evict.reclaim_ms < 200.0);
        }
    }

    #[test]
    fn swap_policies_trade_restore_speed_for_savings() {
        let rows = run();
        for kind in FunctionKind::ALL {
            let get = |p: IdlePolicy| {
                *rows
                    .iter()
                    .find(|r| r.kind == kind && r.policy == p)
                    .unwrap()
            };
            let disk = get(IdlePolicy::SwapDisk);
            let zpool = get(IdlePolicy::SwapCompressed);
            let soft = get(IdlePolicy::Soft);
            // Disk swap releases the full anon set; the pool retains.
            assert!(
                zpool.released_mib < disk.released_mib,
                "{kind:?}: pool retains a share"
            );
            // The pool restores faster than disk.
            assert!(zpool.restart_ms < disk.restart_ms);
            // Swap preserves state but soft rebuild includes function
            // init — for compute-light functions swap-disk's fault storm
            // can still lose; at minimum the compressed pool must beat
            // disk swap and the full rebuild path.
            assert!(
                zpool.restart_ms < soft.restart_ms,
                "{kind:?}: zpool {} vs soft {}",
                zpool.restart_ms,
                soft.restart_ms
            );
        }
    }

    #[test]
    fn render_covers_grid() {
        let rows = run();
        assert_eq!(rows.len(), 20);
        let s = render(&rows);
        assert!(s.contains("soft restart is"));
        assert!(s.contains("keep-alive"));
        assert!(s.contains("swap-disk"));
        assert!(s.contains("Bert"));
    }
}
