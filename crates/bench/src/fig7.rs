//! Figure 7: CPU utilization (%) of the kernel threads serving
//! downsizing requests, in the guest and in the host, while repeatedly
//! reclaiming 512 MiB. Balloon spikes host CPU; vanilla virtio-mem
//! hammers the guest vCPU with migrations; Squeezy needs almost nothing.

use mem_types::MIB;
use sim_core::experiment::{run_experiment, ExpOpts, Experiment, TrialCtx};
use sim_core::metrics::mean;
use sim_core::{BusyRecorder, CostModel, DetRng, SimDuration, SimTime};

use crate::setup::{FarmKind, MemhogFarm};
use crate::table::TextTable;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Reclaim size per step (paper: 512 MiB).
    pub reclaim_bytes: u64,
    /// Memhog instances loading the VM.
    pub instances: u32,
    /// Per-instance footprint.
    pub hog_bytes: u64,
    /// Experiment length in seconds (paper: 200 s).
    pub duration_s: u64,
    /// Seconds between reclaim steps.
    pub period_s: u64,
}

impl Fig7Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig7Config {
            reclaim_bytes: 512 * MIB,
            instances: 16,
            hog_bytes: 512 * MIB,
            duration_s: 200,
            period_s: 10,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        Fig7Config {
            reclaim_bytes: 256 * MIB,
            instances: 4,
            hog_bytes: 256 * MIB,
            duration_s: 40,
            period_s: 10,
        }
    }
}

/// Per-method utilization series (fraction of one CPU, per second).
#[derive(Clone, Debug)]
pub struct Fig7Series {
    /// Method name.
    pub method: &'static str,
    /// Guest kernel-thread utilization per second.
    pub guest_util: Vec<f64>,
    /// Host (VMM) thread utilization per second.
    pub host_util: Vec<f64>,
}

impl Fig7Series {
    /// Mean utilization over the experiment.
    pub fn mean_guest(&self) -> f64 {
        mean(&self.guest_util)
    }

    /// Mean host utilization over the experiment.
    pub fn mean_host(&self) -> f64 {
        mean(&self.host_util)
    }

    /// Peak guest utilization.
    pub fn peak_guest(&self) -> f64 {
        self.guest_util.iter().copied().fold(0.0, f64::max)
    }

    /// Peak host utilization.
    pub fn peak_host(&self) -> f64 {
        self.host_util.iter().copied().fold(0.0, f64::max)
    }
}

/// The per-method sweep on the engine: the output is a utilization
/// timeline, so it clamps to one trial. The farm stream is derived from
/// the trial only — NOT the method — so all three methods are measured
/// on an identically churned farm.
struct Fig7Exp<'a> {
    cfg: &'a Fig7Config,
}

impl Experiment for Fig7Exp<'_> {
    type Point = &'static str;
    type Output = Fig7Series;

    fn points(&self) -> Vec<&'static str> {
        vec!["Balloon", "Virtio-mem", "Squeezy"]
    }

    fn seed(&self) -> u64 {
        crate::setup::CHURN_SEED
    }

    fn run_trial(&self, method: &&'static str, ctx: &mut TrialCtx) -> Fig7Series {
        let mut rng = DetRng::new(self.seed()).derive(ctx.trial);
        run_method(method, self.cfg, &mut rng)
    }
}

/// Runs the experiment for all three methods.
pub fn run(cfg: &Fig7Config) -> Vec<Fig7Series> {
    run_with(cfg, &ExpOpts::default())
}

/// [`run`] with explicit engine options.
pub fn run_with(cfg: &Fig7Config, opts: &ExpOpts) -> Vec<Fig7Series> {
    run_experiment(&Fig7Exp { cfg }, opts.effective_jobs())
        .into_iter()
        .map(|mut trials| trials.remove(0))
        .collect()
}

/// One reclaim/re-add cycle per period; kernel threads are pinned to
/// dedicated cores (§6.1.2), so their busy time maps directly onto the
/// recorder.
fn run_method(method: &'static str, cfg: &Fig7Config, rng: &mut DetRng) -> Fig7Series {
    let cost = CostModel::default();
    let kind = if method == "Squeezy" {
        FarmKind::Squeezy
    } else {
        FarmKind::Vanilla
    };
    let mut farm = MemhogFarm::build_seeded(kind, cfg.instances, cfg.hog_bytes, 1, &cost, rng);
    // Free one instance's worth so there is reclaimable memory; the rest
    // keeps running (loaded vCPUs).
    farm.kill(0);

    let mut guest_busy = BusyRecorder::new(SimDuration::secs(1));
    let mut host_busy = BusyRecorder::new(SimDuration::secs(1));
    let end = SimTime::ZERO + SimDuration::secs(cfg.duration_s);

    let mut t = SimTime::ZERO + SimDuration::secs(cfg.period_s / 2);
    while t < end {
        let (guest_cpu, host_cpu) = match method {
            "Balloon" => {
                let r = farm
                    .vm
                    .balloon_reclaim(&mut farm.host, cfg.reclaim_bytes, &cost)
                    .expect("free memory available");
                let cpu = (r.guest_cpu, r.host_cpu);
                // Re-add for the next cycle.
                farm.vm
                    .balloon
                    .deflate(&mut farm.vm.guest, cfg.reclaim_bytes, &cost);
                cpu
            }
            "Virtio-mem" => {
                let bytes = mem_types::align_up_to_block(cfg.reclaim_bytes);
                let r = farm
                    .vm
                    .unplug(&mut farm.host, bytes, None, &cost)
                    .expect("unplug");
                let cpu = (r.guest_cpu, r.host_cpu);
                farm.vm.plug(bytes, &cost).expect("replug");
                cpu
            }
            "Squeezy" => {
                let sq = farm.squeezy.as_mut().expect("squeezy farm");
                let (_, r) = sq
                    .unplug_partition(&mut farm.vm, &mut farm.host, &cost)
                    .expect("free partition");
                let cpu = (r.guest_cpu, r.host_cpu);
                sq.plug_partition(&mut farm.vm, &cost).expect("replug");
                cpu
            }
            _ => unreachable!(),
        };
        guest_busy.add_busy(t, t + guest_cpu);
        host_busy.add_busy(t, t + host_cpu);
        t += SimDuration::secs(cfg.period_s);
    }

    Fig7Series {
        method,
        guest_util: guest_busy.utilization(end),
        host_util: host_busy.utilization(end),
    }
}

/// Renders per-method summary plus a sampled timeline.
pub fn render(series: &[Fig7Series]) -> String {
    let mut t = TextTable::new(&[
        "Method",
        "Guest mean(%)",
        "Guest peak(%)",
        "Host mean(%)",
        "Host peak(%)",
    ]);
    for s in series {
        t.row(vec![
            s.method.to_string(),
            format!("{:.1}", 100.0 * s.mean_guest()),
            format!("{:.1}", 100.0 * s.peak_guest()),
            format!("{:.1}", 100.0 * s.mean_host()),
            format!("{:.1}", 100.0 * s.peak_host()),
        ]);
    }
    let mut out =
        String::from("Figure 7: CPU utilization of the reclaim kernel threads (guest and host)\n");
    out.push_str(&t.render());
    out.push_str(
        "(paper: balloon spikes host CPU, virtio-mem's guest kthread migrates heavily,\n\
         Squeezy requires negligible CPU resources)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtio_guest_heavy_balloon_host_heavy_squeezy_negligible() {
        let series = run(&Fig7Config::quick());
        let get = |m: &str| series.iter().find(|s| s.method == m).unwrap();
        let balloon = get("Balloon");
        let virtio = get("Virtio-mem");
        let squeezy = get("Squeezy");

        // Balloon is host-side dominated.
        assert!(
            balloon.peak_host() > balloon.peak_guest(),
            "balloon host {:.3} vs guest {:.3}",
            balloon.peak_host(),
            balloon.peak_guest()
        );
        // virtio-mem is guest-side dominated (migrations).
        assert!(
            virtio.peak_guest() > virtio.peak_host(),
            "virtio guest {:.3} vs host {:.3}",
            virtio.peak_guest(),
            virtio.peak_host()
        );
        // Squeezy uses far less CPU than either.
        assert!(squeezy.mean_guest() < virtio.mean_guest() / 10.0);
        assert!(squeezy.mean_host() < balloon.mean_host() / 10.0);
        assert!(squeezy.peak_guest() < 0.05, "{:.4}", squeezy.peak_guest());
    }

    #[test]
    fn utilization_series_cover_duration() {
        let cfg = Fig7Config::quick();
        let series = run(&cfg);
        for s in &series {
            assert_eq!(s.guest_util.len() as u64, cfg.duration_s);
            assert!(s.guest_util.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn render_has_all_methods() {
        let s = render(&run(&Fig7Config::quick()));
        for m in ["Balloon", "Virtio-mem", "Squeezy"] {
            assert!(s.contains(m));
        }
    }
}
