//! Shared experiment scaffolding: memhog farms on differently-backed VMs.

use guest_mm::GuestMmConfig;
use mem_types::{align_up_to_block, GIB, MIB, PAGE_SIZE};
use sim_core::{CostModel, DetRng};
use squeezy::{SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::Memhog;

/// A VM fully loaded with memhog instances, ready for kill/reclaim steps.
pub struct MemhogFarm {
    /// The VM under test.
    pub vm: Vm,
    /// Host memory backing it.
    pub host: HostMemory,
    /// Squeezy manager when the farm is partitioned.
    pub squeezy: Option<SqueezyManager>,
    /// The running memhog instances.
    pub hogs: Vec<Memhog>,
    /// Per-instance footprint in bytes.
    pub hog_bytes: u64,
}

/// How the farm's VM manages hot-plugged memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FarmKind {
    /// Hotplug region plugged wholesale into `ZONE_MOVABLE` (the setup
    /// for balloon and vanilla virtio-mem experiments).
    Vanilla,
    /// Squeezy partitions, one per memhog.
    Squeezy,
}

impl MemhogFarm {
    /// Builds a farm of `instances` memhogs of `hog_bytes` each and
    /// warms them up so the VM is fully occupied (§6.1.1).
    ///
    /// For the vanilla kind the instances fault their memory in
    /// interleaved chunks and then churn, reproducing the footprint
    /// interleaving of Figure 3; for Squeezy each instance is confined
    /// to its partition.
    pub fn build(
        kind: FarmKind,
        instances: u32,
        hog_bytes: u64,
        churn_rounds: u32,
        cost: &CostModel,
    ) -> MemhogFarm {
        Self::build_seeded(
            kind,
            instances,
            hog_bytes,
            churn_rounds,
            cost,
            &mut DetRng::new(CHURN_SEED),
        )
    }

    /// [`MemhogFarm::build`] with an explicit churn stream, so repeated
    /// experiment trials scatter footprints differently.
    pub fn build_seeded(
        kind: FarmKind,
        instances: u32,
        hog_bytes: u64,
        churn_rounds: u32,
        cost: &CostModel,
        rng: &mut DetRng,
    ) -> MemhogFarm {
        let part_bytes = align_up_to_block(hog_bytes);
        let hotplug = part_bytes * instances as u64;
        let mut host = HostMemory::new(hotplug + 64 * GIB);
        let mut vm = Vm::boot(
            VmConfig {
                guest: GuestMmConfig {
                    boot_bytes: GIB,
                    hotplug_bytes: hotplug,
                    kernel_bytes: 192 * MIB,
                    init_on_alloc: true,
                },
                vcpus: instances as f64,
            },
            &mut host,
        )
        .expect("host sized for the farm");

        let squeezy = match kind {
            FarmKind::Vanilla => {
                vm.plug(hotplug, cost).expect("region plugs");
                None
            }
            FarmKind::Squeezy => Some(
                SqueezyManager::install(
                    &mut vm,
                    SqueezyConfig {
                        partition_bytes: part_bytes,
                        shared_bytes: 0,
                        concurrency: instances,
                    },
                    cost,
                )
                .expect("layout fits"),
            ),
        };

        let mut farm = MemhogFarm {
            vm,
            host,
            squeezy,
            hogs: Vec::new(),
            hog_bytes,
        };

        // Spawn and (for Squeezy) attach all instances.
        for _ in 0..instances {
            let hog = Memhog::spawn(&mut farm.vm, hog_bytes);
            if let Some(sq) = farm.squeezy.as_mut() {
                sq.plug_partition(&mut farm.vm, cost).expect("partition");
                match sq.attach(&mut farm.vm, hog.pid).expect("attach") {
                    squeezy::AttachOutcome::Attached(_) => {}
                    squeezy::AttachOutcome::Queued => {
                        sq.wake_waiters(&mut farm.vm);
                    }
                }
            }
            farm.hogs.push(hog);
        }

        // Warm up in interleaved chunks so footprints mix across blocks
        // (vanilla) — Squeezy's pinned policies keep them apart anyway.
        let hogs = farm.hogs.clone();
        fill_interleaved(&mut farm.vm, &mut farm.host, &hogs, cost);
        churn_seeded(&mut farm.vm, &mut farm.host, &hogs, churn_rounds, cost, rng);
        farm
    }

    /// Kills memhog `idx` (guest exit + Squeezy detach). Returns its pid
    /// footprint in pages.
    pub fn kill(&mut self, idx: usize) -> u64 {
        let hog = self.hogs[idx];
        let freed = self.vm.guest.exit_process(hog.pid).expect("hog alive");
        if let Some(sq) = self.squeezy.as_mut() {
            sq.detach(hog.pid).expect("hog attached");
        }
        freed
    }
}

/// Warms up `hogs` by faulting their footprints in interleaved 16 MiB
/// chunks — concurrent warm-up, the source of the Figure-3 interleaving.
pub fn fill_interleaved(vm: &mut Vm, host: &mut HostMemory, hogs: &[Memhog], cost: &CostModel) {
    let mut faulted = vec![0u64; hogs.len()];
    loop {
        let mut progressed = false;
        for (i, hog) in hogs.iter().enumerate() {
            let chunk_pages = (16 * MIB / PAGE_SIZE).min(hog.pages);
            let left = hog.pages - faulted[i];
            if left == 0 {
                continue;
            }
            let n = left.min(chunk_pages);
            vm.touch_anon(host, hog.pid, n, cost)
                .expect("workload sized to fit");
            faulted[i] += n;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}

/// The default churn stream seed, used when no trial stream is given.
pub const CHURN_SEED: u64 = 0xC0FFEE;

/// Runs `rounds` of concurrent free/refault churn over a quarter of each
/// hog's footprint, scattering footprints the way long-running memhogs
/// do.
pub fn churn(vm: &mut Vm, host: &mut HostMemory, hogs: &[Memhog], rounds: u32, cost: &CostModel) {
    churn_seeded(vm, host, hogs, rounds, cost, &mut DetRng::new(CHURN_SEED));
}

/// [`churn`] with an explicit stream, so repeated trials differ.
pub fn churn_seeded(
    vm: &mut Vm,
    host: &mut HostMemory,
    hogs: &[Memhog],
    rounds: u32,
    cost: &CostModel,
    rng: &mut DetRng,
) {
    for _ in 0..rounds {
        let mut order: Vec<usize> = (0..hogs.len()).collect();
        rng.shuffle(&mut order);
        for &i in &order {
            vm.guest
                .free_anon(hogs[i].pid, hogs[i].pages / 4)
                .expect("alive");
        }
        rng.shuffle(&mut order);
        for &i in &order {
            vm.touch_anon(host, hogs[i].pid, hogs[i].pages / 4, cost)
                .expect("refault fits");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_types::BlockId;

    #[test]
    fn vanilla_farm_interleaves_footprints() {
        let cost = CostModel::default();
        let farm = MemhogFarm::build(FarmKind::Vanilla, 4, 128 * MIB, 1, &cost);
        // Count blocks containing pages from more than one owner.
        let mm = farm.vm.guest.memmap();
        let mut mixed = 0;
        for bi in 8..farm.vm.guest.blocks().len() {
            let b = BlockId(bi);
            let mut owners = std::collections::HashSet::new();
            for g in b.frames().iter() {
                let d = mm.page(g);
                if d.state == guest_mm::PageState::Anon {
                    owners.insert(d.a);
                }
            }
            if owners.len() > 1 {
                mixed += 1;
            }
        }
        assert!(mixed > 0, "churned memhogs share blocks");
    }

    #[test]
    fn squeezy_farm_keeps_footprints_apart() {
        let cost = CostModel::default();
        let farm = MemhogFarm::build(FarmKind::Squeezy, 4, 128 * MIB, 1, &cost);
        let mm = farm.vm.guest.memmap();
        for bi in 8..farm.vm.guest.blocks().len() {
            let b = BlockId(bi);
            let mut owners = std::collections::HashSet::new();
            for g in b.frames().iter() {
                let d = mm.page(g);
                if d.state == guest_mm::PageState::Anon {
                    owners.insert(d.a);
                }
            }
            assert!(owners.len() <= 1, "block {bi} mixes instances");
        }
    }

    #[test]
    fn kill_frees_instance_memory() {
        let cost = CostModel::default();
        let mut farm = MemhogFarm::build(FarmKind::Vanilla, 2, 128 * MIB, 0, &cost);
        let used0 = farm.vm.guest.used_bytes();
        let freed = farm.kill(0);
        assert_eq!(freed, 128 * MIB / PAGE_SIZE);
        assert_eq!(farm.vm.guest.used_bytes(), used0 - 128 * MIB);
    }
}
