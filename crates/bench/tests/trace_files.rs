//! The committed example traces are pinned to their generators: the
//! files under `examples/traces/` must be byte-identical to what
//! `repro gen-trace` writes, and the committed replay scenario must
//! point at them. Regenerate with
//!
//! ```text
//! cargo run --release -p squeezy-bench --bin repro -- gen-trace
//! ```

use faas::{PolicyKind, Scenario, Topology};
use workloads::{FunctionKind, TraceFormat};

/// Repo-root-relative path, anchored on this crate's manifest so the
/// tests pass whatever the working directory.
fn repo(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn committed_azure_trace_matches_its_generator() {
    let committed = std::fs::read_to_string(repo("examples/traces/azure_3day.csv"))
        .expect("examples/traces/azure_3day.csv is committed (run `repro gen-trace`)");
    assert!(
        committed == workloads::sample_azure_3day(),
        "azure_3day.csv drifted from its generator; rerun `repro gen-trace`"
    );
}

#[test]
fn committed_opendc_trace_matches_its_generator() {
    let committed = std::fs::read_to_string(repo("examples/traces/opendc_sample.csv"))
        .expect("examples/traces/opendc_sample.csv is committed (run `repro gen-trace`)");
    assert!(
        committed == workloads::sample_opendc(),
        "opendc_sample.csv drifted from its generator; rerun `repro gen-trace`"
    );
}

#[test]
fn committed_replay_scenario_points_at_the_committed_trace() {
    let text = std::fs::read_to_string(repo("examples/scenarios/trace_replay.scn"))
        .expect("examples/scenarios/trace_replay.scn is committed");
    let spec = Scenario::parse(&text).expect("spec parses");
    assert_eq!(
        spec.workload.key(),
        "trace(examples/traces/azure_3day.csv)",
        "the replay spec streams the committed 3-day trace"
    );
    assert_eq!(spec.topology, Topology::Fleet);
    assert_eq!(
        spec.policy,
        PolicyKind::Fixed,
        "frozen fleet stays at max_hosts"
    );
    assert_eq!(spec.params.duration_s, 3.0 * 86400.0, "multi-day replay");

    // The trace header carries the Table-1 tenant mix the spec's fleet
    // template is built from.
    let header = workloads::read_trace_header(&repo("examples/traces/azure_3day.csv"))
        .expect("trace header parses");
    assert_eq!(header.format, TraceFormat::AzureMinute);
    assert_eq!(
        header.kinds,
        vec![
            FunctionKind::Html,
            FunctionKind::Cnn,
            FunctionKind::Bfs,
            FunctionKind::Bert
        ]
    );
}

/// The multi-million-invocation claim, checked against the committed
/// file itself: a full validation scan expands every minute row.
#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "full 2M+-arrival scan; enable with --features slow-tests"
)]
fn committed_azure_trace_expands_to_two_million_invocations() {
    let stats = workloads::validate_trace(&repo("examples/traces/azure_3day.csv"))
        .expect("trace validates");
    assert!(
        stats.arrivals >= 2_000_000,
        "3-day trace offers 2M+ invocations (got {})",
        stats.arrivals
    );
    let end_s = stats.end_ns as f64 / 1e9;
    assert!(
        end_s > 2.9 * 86400.0 && end_s < 3.0 * 86400.0,
        "arrivals span the full 3 days (last at {end_s:.0}s)"
    );
}
