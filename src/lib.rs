//! Umbrella crate for the Squeezy reproduction workspace.
//!
//! Re-exports the layered crates so examples and integration tests can
//! use one façade:
//!
//! * [`mem_types`] / [`sim_core`] — units and the simulation core;
//! * [`guest_mm`] — the guest kernel memory manager (incl. THP, swap
//!   primitives);
//! * [`virtio_mem`] / [`balloon`] / [`swap`] / [`vmm`] — devices
//!   (hot(un)plug, ballooning + free page reporting, swap) and the host
//!   side;
//! * [`squeezy`] — the paper's contribution: partitioned guest memory,
//!   plus the §7 extensions (flex / soft / temporal partitions);
//! * [`workloads`] / [`faas`] — workloads and the FaaS runtime model
//!   (incl. hybrid scaling);
//! * [`squeezy_bench`] — the table/figure/ablation reproduction harness.

pub use balloon;
pub use faas;
pub use guest_mm;
pub use mem_types;
pub use sim_core;
pub use squeezy;
pub use squeezy_bench;
pub use swap;
pub use virtio_mem;
pub use vmm;
pub use workloads;
