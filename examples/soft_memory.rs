//! Soft-memory partitions (§7): idle keep-alive instances donate their
//! memory back under host pressure and rebuild it on the next request.
//!
//! ```text
//! cargo run --release --example soft_memory
//! ```

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB};
use sim_core::CostModel;
use squeezy::{SoftWake, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};

fn main() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: 4 * GIB,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 4.0,
        },
        &mut host,
    )
    .expect("host fits");
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 768 * MIB,
            shared_bytes: 256 * MIB,
            concurrency: 4,
        },
        &cost,
    )
    .expect("layout fits");

    // Three warm instances, each holding a 400 MiB heap.
    let mut pids = Vec::new();
    for _ in 0..3 {
        sq.plug_partition(&mut vm, &cost).expect("partition");
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).expect("attach");
        vm.touch_anon(&mut host, pid, 400 * MIB / 4096, &cost)
            .expect("heap fits");
        pids.push(pid);
    }
    println!("3 warm instances: host holds {} MiB", vm.host_rss() / MIB);

    // The instances go idle; their runtimes mark the heaps soft.
    for &pid in &pids {
        sq.mark_soft(pid).expect("attached");
    }

    // Host pressure: revoke two soft partitions — instantly, no
    // migrations, while the instances stay alive.
    let revoked = sq
        .revoke_soft(&mut vm, &mut host, 2, &cost)
        .expect("revocable");
    for (id, report) in &revoked {
        println!(
            "revoked partition {:?} in {} (migrations: {})",
            id,
            report.latency(),
            report.outcome.migrated,
        );
    }
    println!(
        "after revocation: host holds {} MiB, {} instances still alive",
        vm.host_rss() / MIB,
        pids.len(),
    );

    // A request arrives for each instance; revoked ones re-plug and
    // rebuild, the survivor wakes warm.
    for &pid in &pids {
        match sq.mark_firm(pid).expect("attached") {
            SoftWake::Warm => println!("{pid:?}: warm start (heap intact)"),
            SoftWake::NeedsReplug => {
                let plug = sq.replug(&mut vm, pid, &cost).expect("revoked");
                let refault = vm
                    .touch_anon(&mut host, pid, 400 * MIB / 4096, &cost)
                    .expect("heap fits");
                println!(
                    "{pid:?}: soft-cold start (replug {} + rebuild {})",
                    plug.latency(),
                    refault.latency,
                );
            }
        }
    }
    println!("steady state again: host holds {} MiB", vm.host_rss() / MIB);
}
