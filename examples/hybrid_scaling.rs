//! Hybrid horizontal + vertical scaling (§7 [56]): absorb request
//! bursts past the VM's concurrency factor by cloning the N:1 VM,
//! instead of capping out (vertical) or booting a microVM per instance
//! (horizontal).
//!
//! ```text
//! cargo run --release --example hybrid_scaling [N] [burst]
//! ```

use faas::{absorb_burst, ScaleStrategy};
use sim_core::CostModel;
use workloads::FunctionKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(8);
    let burst: u32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2 * n);
    let cost = CostModel::default();

    println!("Absorbing a burst of {burst} CNN instance starts (N={n} per VM):\n");
    println!(
        "{:<12} {:>7} {:>15} {:>14} {:>11} {:>5}",
        "strategy", "served", "mean start(ms)", "max start(ms)", "host(MiB)", "VMs"
    );
    for strategy in ScaleStrategy::ALL {
        let o =
            absorb_burst(FunctionKind::Cnn, strategy, n, burst, &cost).expect("unconstrained host");
        println!(
            "{:<12} {:>7} {:>15.0} {:>14.0} {:>11.0} {:>5}",
            strategy.name(),
            o.served,
            o.mean_start_ms,
            o.max_start_ms,
            o.host_mib,
            o.vms,
        );
    }
    println!(
        "\nvertical caps at N; horizontal pays a microVM boot + replicated OS per\n\
         instance; hybrid clones the warm VM at the boundary and keeps near-vertical\n\
         start latency with a fraction of the horizontal footprint"
    );
}
