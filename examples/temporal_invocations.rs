//! Temporal segregation (§7, FaaSMem): reclaim a function's scratch
//! memory after every invocation, not just at instance eviction.
//!
//! ```text
//! cargo run --release --example temporal_invocations
//! ```

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB, PAGE_SIZE};
use sim_core::CostModel;
use squeezy::{FlexManager, TemporalInstance};
use vmm::{HostMemory, Vm, VmConfig};

fn main() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: 4 * GIB,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )
    .expect("host fits");
    let mut flex = FlexManager::install(&mut vm);

    // One instance: 256 MiB of base runtime state that lives across
    // invocations, plus a 512 MiB per-invocation scratch region.
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let (mut inst, _) =
        TemporalInstance::create(&mut flex, &mut vm, pid, 256 * MIB, 512 * MIB, &cost)
            .expect("layout fits");
    vm.touch_anon(&mut host, pid, 200 * MIB / PAGE_SIZE, &cost)
        .expect("base fits");
    println!(
        "instance warm: host holds {} MiB (base only)",
        vm.host_rss() / MIB
    );

    for invocation in 1..=3 {
        // Invocation starts: the scratch partition plugs in.
        inst.begin_invocation(&mut flex, &mut vm, &cost)
            .expect("span reserved");
        vm.touch_anon(&mut host, pid, 400 * MIB / PAGE_SIZE, &cost)
            .expect("scratch fits");
        println!(
            "invocation {invocation} running: host holds {} MiB (base + scratch)",
            vm.host_rss() / MIB,
        );

        // Invocation ends: scratch drains and unplugs instantly.
        let report = inst
            .end_invocation(&mut flex, &mut vm, &mut host, &cost)
            .expect("drained")
            .expect("blocks reclaimed");
        println!(
            "invocation {invocation} done: reclaimed {} MiB in {} (migrations: {}), \
             host back to {} MiB",
            report.bytes() / MIB,
            report.latency(),
            report.outcome.migrated,
            vm.host_rss() / MIB,
        );
    }

    // Instance eviction reclaims the base partition too.
    vm.guest.exit_process(pid).expect("alive");
    inst.destroy(&mut flex, &mut vm, &mut host, &cost)
        .expect("both partitions reclaimed");
    println!("instance evicted: host holds {} MiB", vm.host_rss() / MIB);
}
