//! Drives the FaaS runtime through the declarative scenario front
//! door: the whole experiment — workload, topology, backend sweep,
//! duration, seed — is the spec string below, not hand-wired configs.
//! Edit the string (or load a `.scn` file with
//! `std::fs::read_to_string`) and re-run; no other code changes.
//!
//! ```text
//! cargo run --release --example faas_autoscaler
//! ```

use faas::Scenario;
use sim_core::ExpOpts;

const SPEC: &str = "\
# A bursty CNN-and-friends service on one N:1 VM, Squeezy against the
# static baseline under identical traces.
name = autoscaler-demo
topology = single-vm
backend = static, squeezy
workload = azure-trace
tenants = 1
rps = 2.5
duration_s = 240.0
concurrency = 10
keepalive_s = 30.0
host_capacity = 16GiB
seed = 7
";

fn main() {
    let scenario = Scenario::parse(SPEC).expect("spec is valid");
    println!("spec (canonical render):\n\n{}", scenario.render());

    let result = scenario.run(&ExpOpts::auto()).expect("scenario runs");
    println!("{}", result.render());

    // The unified result keeps per-cell detail: show what the
    // elasticity bought, backend by backend.
    for (backend, trials) in &result.cells {
        let out = &trials[0];
        println!(
            "{:<12} {:>4} served, {:>3} cold / {:>3} warm, {:>7.1} GiB*s, p99 {:>5.0} ms",
            backend.name(),
            out.completed,
            out.cold_starts,
            out.warm_starts,
            out.gib_seconds,
            out.merged_latency().p99(),
        );
    }
}
