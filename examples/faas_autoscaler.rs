//! Drives the FaaS runtime model with a bursty trace on a Squeezy-backed
//! N:1 VM and prints the elasticity timeline: instances, guest memory,
//! host memory, and the reclaim statistics.
//!
//! ```text
//! cargo run --release --example faas_autoscaler
//! ```

use faas::{BackendKind, Deployment, FaasSim, SimConfig};
use sim_core::{DetRng, SimDuration};
use workloads::{bursty_arrivals, BurstyTraceConfig, FunctionKind};

fn main() {
    let mut rng = DetRng::new(7);
    let arrivals = bursty_arrivals(
        &BurstyTraceConfig {
            duration_s: 240.0,
            base_rps: 0.5,
            burst_rps: 10.0,
            mean_burst_s: 20.0,
            mean_idle_s: 30.0,
        },
        &mut rng,
    );
    println!("trace: {} CNN invocations over 240 s", arrivals.len());

    let cfg = SimConfig {
        keepalive_s: 30.0,
        ..SimConfig::single_vm(
            BackendKind::Squeezy,
            Deployment {
                kind: FunctionKind::Cnn,
                concurrency: 10,
                arrivals,
            },
            240.0,
        )
    };
    let mut result = FaasSim::new(cfg).expect("boot").run();

    println!("\n  t(s)  #inst  guest(GiB)  host(GiB)");
    let insts = result.instance_counts[0].downsample(SimDuration::secs(10));
    let guest = result.guest_usage[0].downsample(SimDuration::secs(10));
    let host = result.host_usage.downsample(SimDuration::secs(10));
    for i in 0..insts.len().min(guest.len()).min(host.len()) {
        println!(
            "  {:>4.0}  {:>5.0}  {:>10.2}  {:>9.2}",
            insts[i].0,
            insts[i].1,
            guest[i].1 / (1u64 << 30) as f64,
            host[i].1 / (1u64 << 30) as f64,
        );
    }

    let m = &result.per_func[&FunctionKind::Cnn];
    let reclaims = result.total_reclaims();
    println!(
        "\nserved {} requests ({} cold, {} warm)",
        result.completed, m.cold_starts, m.warm_starts
    );
    println!(
        "reclaimed {} MiB in {} operations at {:.0} MiB/s — zero migrations: {}",
        reclaims.bytes >> 20,
        reclaims.ops,
        reclaims.throughput_mibs(),
        reclaims.pages_migrated == 0,
    );
    println!("P99 latency: {:.0} ms", result.p99_ms(FunctionKind::Cnn));
}
