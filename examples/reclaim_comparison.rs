//! Compares the three reclamation interfaces on one scenario: a memhog
//! instance dies and its memory goes back to the host.
//!
//! Reproduces the §6.1.1 microbenchmark shape at example scale:
//! ballooning (page granularity, exit bound) < vanilla virtio-mem
//! (migration + zeroing bound) < Squeezy (instant partition unplug).
//!
//! ```text
//! cargo run --release --example reclaim_comparison [size_mib]
//! ```

use mem_types::{ByteSize, MIB};
use sim_core::CostModel;
use squeezy_bench::setup::{FarmKind, MemhogFarm};

fn main() {
    let size_mib: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let bytes = size_mib * MIB;
    let cost = CostModel::default();
    println!("reclaiming {} from a loaded 8:1 VM\n", ByteSize(bytes));

    // Balloon.
    let mut farm = MemhogFarm::build(FarmKind::Vanilla, 8, bytes, 1, &cost);
    farm.kill(0);
    let r = farm
        .vm
        .balloon_reclaim(&mut farm.host, bytes, &cost)
        .expect("freed memory available");
    println!(
        "balloon:    {:>10}   ({} VM exits, {:.0}% exit-bound)",
        r.latency().to_string(),
        r.exits,
        100.0 * r.breakdown.fractions()[2],
    );

    // Vanilla virtio-mem.
    let mut farm = MemhogFarm::build(FarmKind::Vanilla, 8, bytes, 1, &cost);
    farm.kill(0);
    let r = farm
        .vm
        .unplug(
            &mut farm.host,
            mem_types::align_up_to_block(bytes),
            None,
            &cost,
        )
        .expect("unplug");
    println!(
        "virtio-mem: {:>10}   ({} pages migrated, {} zeroed)",
        r.latency().to_string(),
        r.outcome.migrated,
        r.outcome.zeroed,
    );

    // Squeezy.
    let mut farm = MemhogFarm::build(FarmKind::Squeezy, 8, bytes, 1, &cost);
    farm.kill(0);
    let sq = farm.squeezy.as_mut().expect("squeezy farm");
    let (_, r) = sq
        .unplug_partition(&mut farm.vm, &mut farm.host, &cost)
        .expect("free partition");
    println!(
        "squeezy:    {:>10}   (0 migrations, 0 zeroed — partition unplug)",
        r.latency().to_string(),
    );
}
