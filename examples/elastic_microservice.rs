//! Variable-sized flex partitions (§7): a long-running microservice
//! grows its partition on demand and gives empty blocks back on its own
//! schedule — no fixed per-function memory limit required.
//!
//! ```text
//! cargo run --release --example elastic_microservice
//! ```

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB, PAGE_SIZE};
use sim_core::CostModel;
use squeezy::FlexManager;
use vmm::{HostMemory, Vm, VmConfig};

fn main() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: 8 * GIB,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 4.0,
        },
        &mut host,
    )
    .expect("host fits");
    let mut flex = FlexManager::install(&mut vm);

    // A microservice rated at 2 GiB starts with a 256 MiB slice.
    let (svc, _) = flex
        .create(&mut vm, 2 * GIB, 256 * MIB, &cost)
        .expect("span fits");
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    flex.attach(&mut vm, svc, pid).expect("attach");
    println!(
        "created: rated {} MiB, plugged {} MiB",
        flex.partition(svc).unwrap().rated_bytes() / MIB,
        flex.partition(svc).unwrap().plugged_bytes() / MIB,
    );

    // Load grows in 150 MiB steps up to ~1.5 GiB. Whenever the
    // allocator OOMs inside the partition, the service reacts by
    // growing itself — the §7 application-controlled trigger.
    for step in 1..=10u64 {
        let target = step * 150 * MIB / PAGE_SIZE;
        loop {
            let resident = vm.guest.process(pid).unwrap().rss_pages();
            if resident >= target {
                break;
            }
            if vm
                .touch_anon(&mut host, pid, target - resident, &cost)
                .is_err()
            {
                let grow = flex
                    .grow(&mut vm, svc, 256 * MIB, &cost)
                    .expect("span has headroom");
                println!(
                    "grew by {} MiB in {} (resident {} MiB)",
                    grow.bytes() / MIB,
                    grow.latency(),
                    resident * PAGE_SIZE / MIB,
                );
            }
        }
    }
    println!(
        "peak: plugged {} MiB, resident {} MiB, host {} MiB",
        flex.partition(svc).unwrap().plugged_bytes() / MIB,
        vm.guest.process(pid).unwrap().rss_pages() * PAGE_SIZE / MIB,
        vm.host_rss() / MIB,
    );

    // Load drops: the service frees three quarters of its heap and
    // shrinks to fit — empty blocks unplug instantly.
    let resident = vm.guest.process(pid).unwrap().rss_pages();
    vm.guest.free_anon(pid, resident * 3 / 4).expect("alive");
    let report = flex
        .shrink_to_fit(&mut vm, &mut host, svc, &cost)
        .expect("partition live")
        .expect("blocks drained");
    println!(
        "shrunk: gave back {} MiB in {} (migrations: {})",
        report.bytes() / MIB,
        report.latency(),
        report.outcome.migrated,
    );
    println!(
        "steady: plugged {} MiB, host {} MiB",
        flex.partition(svc).unwrap().plugged_bytes() / MIB,
        vm.host_rss() / MIB,
    );

    // Shutdown: destroy the partition; the span is reusable.
    vm.guest.exit_process(pid).expect("alive");
    flex.detach(pid).expect("attached");
    flex.destroy(&mut vm, &mut host, svc, &cost).expect("idle");
    println!(
        "destroyed: largest free span {} blocks",
        flex.largest_free_blocks()
    );
}
