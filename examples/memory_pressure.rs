//! End-to-end comparison under restricted host memory (the §6.2.2
//! scenario): scale-ups must wait for reclamation of evicted instances.
//!
//! ```text
//! cargo run --release --example memory_pressure
//! ```

use squeezy_bench::fig10::{run, Fig10Config};

fn main() {
    let out = run(&Fig10Config::quick());
    println!("{}", squeezy_bench::fig10::render(&out));
    println!(
        "abundant-memory peak: {:.2} GiB; restricted capacity: {:.2} GiB",
        out.abundant_peak_bytes / (1u64 << 30) as f64,
        out.abundant_peak_bytes * 0.7 / (1u64 << 30) as f64,
    );
}
