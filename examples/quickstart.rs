//! Quickstart: boot a VM, install Squeezy, run one instance lifecycle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{ByteSize, GIB, MIB};
use sim_core::CostModel;
use squeezy::{AttachOutcome, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};

fn main() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(16 * GIB);

    // Boot an N:1 VM: 1 GiB of boot memory plus a hot-pluggable region
    // for four 768 MiB function instances and a shared partition.
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: 4 * GIB,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 4.0,
        },
        &mut host,
    )
    .expect("host has memory");
    println!("booted VM, host usage: {}", ByteSize(host.used_bytes()));

    // Install Squeezy: N = 4 partitions of 768 MiB + 256 MiB shared.
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 768 * MIB,
            shared_bytes: 256 * MIB,
            concurrency: 4,
        },
        &cost,
    )
    .expect("region fits the layout");
    println!(
        "installed Squeezy: {} partitions x {}, shared partition populated",
        sq.partitions().len(),
        ByteSize(sq.partitions()[0].bytes()),
    );

    // Scale up: plug a partition and attach a new function instance.
    let (part, plug) = sq.plug_partition(&mut vm, &cost).expect("partition");
    println!("plugged partition {part:?} in {}", plug.latency());
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    match sq.attach(&mut vm, pid).expect("attach") {
        AttachOutcome::Attached(p) => println!("attached instance pid={pid:?} to {p:?}"),
        AttachOutcome::Queued => unreachable!("partition was just plugged"),
    }

    // The instance touches 300 MiB of anonymous memory (lazily backed).
    let charge = vm
        .touch_anon(&mut host, pid, 300 * MIB / mem_types::PAGE_SIZE, &cost)
        .expect("fits the partition");
    println!(
        "instance faulted {} (host RSS now {}) in {}",
        ByteSize(charge.pages * mem_types::PAGE_SIZE),
        ByteSize(vm.host_rss()),
        charge.latency,
    );

    // Scale down: the instance exits; its partition unplugs instantly.
    vm.guest.exit_process(pid).expect("alive");
    sq.detach(pid).expect("attached");
    let (freed, report) = sq
        .unplug_partition(&mut vm, &mut host, &cost)
        .expect("free partition");
    println!(
        "unplugged partition {freed:?}: {} reclaimed in {} — {} migrations, {} pages zeroed",
        ByteSize(report.bytes()),
        report.latency(),
        report.outcome.migrated,
        report.outcome.zeroed,
    );
    println!("host usage back to {}", ByteSize(host.used_bytes()));
}
