//! Azure-like trace churn analysis (the Figure-2 motivation): how many
//! instances are created and evicted per minute for the most popular
//! functions.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use squeezy_bench::fig2::{run, Fig2Config};

fn main() {
    let cfg = Fig2Config::paper();
    let result = run(&cfg);
    println!("{}", squeezy_bench::fig2::render(&result));
    let avg_per_min =
        (result.total_creations() + result.total_evictions()) as f64 / (cfg.duration_s / 60.0);
    println!(
        "average churn: {avg_per_min:.0} instance events/minute across {} functions — \
         memory must move between instances continuously",
        cfg.functions,
    );
}
