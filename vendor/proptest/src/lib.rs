//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by this
//! workspace's property tests.
//!
//! The build container has no crates-registry access, so the dependency is
//! vendored as a minimal, API-compatible crate. Differences from the real
//! thing:
//!
//! * inputs are sampled from a per-test deterministic stream (seeded from
//!   the test name), so failures reproduce exactly on re-run;
//! * there is **no shrinking** — a failing case panics with the values
//!   still bound, which is enough for CI triage at this repo's scale;
//! * `prop_assert*` are plain `assert*` aliases (they panic instead of
//!   returning `Err`, which is indistinguishable at the harness level
//!   here because there is no shrinker to resume).
//!
//! Supported surface: `proptest! { #![proptest_config(..)] #[test] fn .. }`,
//! `prop_oneof!`, `Strategy` + `prop_map`, integer/float range strategies,
//! tuple strategies, `any::<T>()`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases`.

pub mod test_runner {
    //! Execution configuration and the deterministic input stream.

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic input stream for one property test.
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// Seeds the stream from the test's name, so each property gets an
        /// independent but reproducible sequence of inputs.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(h),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.gen::<u64>()
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            self.rng.gen_range(0..n)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            self.rng.gen::<f64>()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A boxed, type-erased strategy (mirror of `proptest`'s
    /// `BoxedStrategy<T>`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies (the `prop_oneof!`
    /// backing type).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start
                        + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (mirror of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates a `Vec` whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times and runs
/// the body on each sample.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Alias for `assert!` (no shrinking, so failures just panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Alias for `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Alias for `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 10u64..1000, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..1000).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(
            prop_oneof![
                (0u8..4).prop_map(|n| n as u32),
                (10u8..14).prop_map(|n| n as u32),
            ],
            1..20,
        )) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in v {
                prop_assert!(x < 4 || (10..14).contains(&x));
            }
        }

        #[test]
        fn tuples_and_any(pair in (0usize..300, any::<bool>())) {
            prop_assert!(pair.0 < 300);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = TestRng::from_name("fixed");
            (0..32).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_name("fixed");
            (0..32).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
