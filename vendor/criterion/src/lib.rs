//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API used by the
//! workspace's benches.
//!
//! The build container has no crates-registry access, so the dependency is
//! vendored. The statistical machinery (bootstrap, outlier detection,
//! HTML reports) is replaced by a simple median-of-samples wall-clock
//! measurement printed to stdout — enough to compare runs by eye and to
//! keep every `[[bench]]` target compiling (`cargo bench --no-run` is the
//! CI gate; `cargo bench` still produces readable numbers).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// call individually, so the variants only influence batching hints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// Per-iteration batching.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id, so `bench_function` accepts both
/// strings and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter`/`iter_batched` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over `samples` iterations (after one warm-up) and
    /// records the median.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<Id: IntoBenchmarkId, F>(&mut self, id: Id, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            last: None,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.into_id());
        match b.last {
            Some(t) => println!("{label:<60} median {t:>12.2?}"),
            None => println!("{label:<60} (no measurement)"),
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; respect CRITERION_SAMPLES for a
        // quick local override.
        let max_samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(20);
        Criterion { max_samples }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.max_samples,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<Id: IntoBenchmarkId, F>(&mut self, id: Id, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: self.max_samples,
            criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion { max_samples: 3 };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut b = Bencher {
            samples: 5,
            last: None,
        };
        let mut produced = 0u32;
        b.iter_batched(
            || {
                produced += 1;
                produced
            },
            |x| assert!(x > 0),
            BatchSize::LargeInput,
        );
        assert_eq!(produced, 6);
        assert!(b.last.is_some());
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
    }
}
