//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API that this workspace uses: [`rngs::SmallRng`], [`Rng`] and
//! [`SeedableRng`].
//!
//! The build container has no access to a crates registry, so the external
//! dependency is vendored as a minimal, API-compatible crate. The sampling
//! paths the workspace exercises are **bit-exact** with `rand` 0.8.5 +
//! `rand_xoshiro`'s `Xoshiro256PlusPlus` (which is what `SmallRng` resolves
//! to on 64-bit targets):
//!
//! * `seed_from_u64` — SplitMix64 seed expansion (rand_xoshiro's
//!   override, *not* rand_core's PCG32 default);
//! * `next_u64` — xoshiro256++;
//! * `gen::<f64>()` — 53-bit mantissa construction in `[0, 1)`;
//! * `gen_range` over 64-bit integer ranges — widening-multiply with
//!   bitmask-zone rejection (`UniformInt::sample_single_inclusive`);
//! * `gen_range` over `f64` ranges — `[1, 2)` mantissa trick
//!   (`UniformFloat::sample_single`);
//! * `gen_bool` — integer-scaled Bernoulli.
//!
//! Bit-exactness matters because the simulation's statistical regression
//! thresholds were calibrated against the upstream stream.

/// Uniform sampling over a range type, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types that [`Rng::gen`] can produce from the standard distribution.
pub trait Standard: Sized {
    /// Draws a sample from the standard distribution for `Self`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the standard distribution (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Matches `rand`'s `Bernoulli`: `p >= 1` returns `true` without
    /// consuming a draw; otherwise one `u64` is drawn and compared
    /// against `p` scaled to 2⁶⁴.
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or NaN.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(p >= 0.0, "gen_bool p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind `rand`'s `SmallRng` on 64-bit
    /// platforms: fast, small state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        /// rand_xoshiro's `seed_from_u64` override for the xoshiro
        /// family (which `SmallRng` resolves to in rand 0.8.5): four
        /// successive SplitMix64 outputs become the state words. Note
        /// this is *not* rand_core's PCG32-based default — upstream
        /// overrides it, and matching the override is what makes
        /// `SmallRng::seed_from_u64(0)`'s first draw the well-known
        /// `0x53175D61490B23DF`.
        fn seed_from_u64(mut state: u64) -> Self {
            let mut words = [0u64; 4];
            for w in &mut words {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            SmallRng { s: words }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    /// 53-bit mantissa construction: uniform in `[0, 1)`.
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// `UniformInt::sample_single_inclusive` from rand 0.8.5 for 64-bit
/// integers: widening multiply, rejecting low words above the bitmask
/// zone so the result is exactly uniform.
#[inline]
fn uniform_u64_inclusive<R: RngCore>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let range = hi.wrapping_sub(lo).wrapping_add(1);
    if range == 0 {
        // Full span.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = v as u128 * range as u128;
        let m_lo = m as u64;
        if m_lo <= zone {
            return lo.wrapping_add((m >> 64) as u64);
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                uniform_u64_inclusive(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                uniform_u64_inclusive(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

// The 64-bit paths (`u64`, `usize`) are bit-exact with upstream. The
// narrower integers reuse the same 64-bit construction, which upstream
// does *not* (it samples via `u32`); none of the workspace's
// reference-stream-sensitive code draws narrow integers.
impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    /// `UniformFloat::sample_single` from rand 0.8.5: a value in `[1, 2)`
    /// from 52 mantissa bits, then one multiply-add.
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        value1_2 * scale + offset
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    /// Upstream reference vectors: `SmallRng::seed_from_u64(0)`'s first
    /// draw under rand 0.8.5 is `0x53175D61490B23DF` (SplitMix64 seed
    /// expansion into xoshiro256++ — the value asserted in rand's own
    /// test suite). The remaining values were cross-checked with an
    /// independent implementation of the published construction.
    #[test]
    fn matches_upstream_reference_stream() {
        let mut rng = SmallRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(
            got,
            [
                0x5317_5D61_490B_23DF,
                0x61DA_6F3D_C380_D507,
                0x5C0F_DF91_EC9A_7BFC,
                0x02EE_BF8C_3BBE_5E1A,
            ]
        );
        let mut rng = SmallRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
        assert_eq!(
            got,
            [
                0xD076_4D4F_4476_689F,
                0x519E_4174_576F_3791,
                0xFBE0_7CFB_0C24_ED8C,
                0xB37D_9F60_0CD8_35B8,
            ]
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(10u64..20);
            assert!((10..20).contains(&i));
            let j = rng.gen_range(0usize..=3);
            assert!(j <= 3);
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn uniform_rejection_is_unbiased_at_small_span() {
        // span 3 forces heavy rejection; the histogram must stay flat.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0u64..3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
