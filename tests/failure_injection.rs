//! Failure-injection tests: every error path leaves the stack
//! consistent and retryable.

use guest_mm::{AllocPolicy, GuestMmConfig, MmError};
use mem_types::{GIB, MIB, PAGES_PER_BLOCK, PAGE_SIZE};
use sim_core::{CostModel, SimDuration};
use squeezy::{AttachOutcome, SqueezyConfig, SqueezyError, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig, VmmError};

fn vm_config(hotplug: u64) -> VmConfig {
    VmConfig {
        guest: GuestMmConfig {
            boot_bytes: 256 * MIB,
            hotplug_bytes: hotplug,
            kernel_bytes: 32 * MIB,
            init_on_alloc: true,
        },
        vcpus: 2.0,
    }
}

/// Host exhaustion surfaces as `HostOom`, leaves the guest consistent,
/// and the exact same fault succeeds once memory frees up.
#[test]
fn host_oom_is_retryable() {
    let cost = CostModel::default();
    // Two VMs on a host that cannot back both working sets.
    let mut host = HostMemory::new(700 * MIB);
    let mut vm1 = Vm::boot(vm_config(GIB), &mut host).unwrap();
    let mut vm2 = Vm::boot(vm_config(GIB), &mut host).unwrap();
    vm1.plug(512 * MIB, &cost).unwrap();
    vm2.plug(512 * MIB, &cost).unwrap();

    let p1 = vm1.guest.spawn_process(AllocPolicy::MovableDefault);
    let p2 = vm2.guest.spawn_process(AllocPolicy::MovableDefault);
    vm1.touch_anon(&mut host, p1, 400 * MIB / PAGE_SIZE, &cost)
        .unwrap();
    let r = vm2.touch_anon(&mut host, p2, 400 * MIB / PAGE_SIZE, &cost);
    assert_eq!(r.unwrap_err(), VmmError::HostOom);
    vm2.guest.assert_consistent();

    // VM1 shrinks; the retry of the *remaining* pages now fits.
    vm1.guest.exit_process(p1).unwrap();
    vm1.unplug(&mut host, 512 * MIB, None, &cost).unwrap();
    let missing = 400 * MIB / PAGE_SIZE - vm2.guest.process(p2).unwrap().rss_pages();
    vm2.touch_anon(&mut host, p2, missing, &cost).unwrap();
    assert_eq!(
        vm2.guest.process(p2).unwrap().rss_pages(),
        400 * MIB / PAGE_SIZE
    );
    assert_eq!(host.used_bytes(), vm1.host_rss() + vm2.host_rss());
}

/// A deadline-cut unplug reports its shortfall and wasted work; the
/// retry without a deadline finishes the job.
#[test]
fn unplug_timeout_shortfall_then_retry() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(2 * GIB), &mut host).unwrap();
    vm.plug(2 * GIB, &cost).unwrap();
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    // Occupy a quarter of every block so each offline must migrate.
    vm.touch_anon(&mut host, pid, 4 * PAGES_PER_BLOCK, &cost)
        .unwrap();

    let report = vm
        .unplug(&mut host, GIB, Some(SimDuration::millis(20)), &cost)
        .unwrap();
    assert!(report.shortfall_bytes > 0, "deadline cut the request");
    assert!(report.bytes() < GIB);
    vm.guest.assert_consistent();

    // Retry with no deadline reclaims the remainder.
    let retry = vm
        .unplug(&mut host, report.shortfall_bytes, None, &cost)
        .unwrap();
    assert_eq!(retry.shortfall_bytes, 0);
    assert_eq!(retry.bytes(), report.shortfall_bytes);
    vm.guest.assert_consistent();
    assert_eq!(host.used_bytes(), vm.host_rss());
}

/// Offline failure from migration-target exhaustion rolls back, keeps
/// the block online, and succeeds once memory is freed.
#[test]
fn offline_failure_rolls_back_and_retries() {
    let mut mm = guest_mm::GuestMm::new(GuestMmConfig {
        boot_bytes: 128 * MIB,
        hotplug_bytes: 256 * MIB,
        kernel_bytes: 16 * MIB,
        init_on_alloc: true,
    });
    let b = mem_types::BlockId(1);
    mm.hot_add_block(b).unwrap();
    mm.online_block(b, guest_mm::ZONE_MOVABLE).unwrap();
    let hog = mm.spawn_process(AllocPolicy::MovableDefault);
    let free = mm.free_bytes() / PAGE_SIZE;
    mm.fault_anon(hog, free - 50).unwrap();

    let failure = mm.offline_block(b).unwrap_err();
    assert_eq!(failure.error, MmError::OutOfMemory);
    assert!(matches!(
        mm.blocks().state(b),
        guest_mm::BlockState::Online { .. }
    ));
    mm.assert_consistent();

    // Free enough memory elsewhere; the same offline now succeeds.
    mm.free_anon(hog, free * 3 / 4).unwrap();
    let out = mm.offline_block(b).unwrap();
    assert!(out.migrated > 0 || out.isolated_free > 0);
    mm.assert_consistent();
}

/// The OOM-killer containment path: an instance that overruns its
/// partition dies, and its partition unplugs instantly and is reusable.
#[test]
fn partition_overrun_kill_reclaim_reuse() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(2 * GIB), &mut host).unwrap();
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 256 * MIB,
            shared_bytes: 0,
            concurrency: 2,
        },
        &cost,
    )
    .unwrap();
    sq.plug_partition(&mut vm, &cost).unwrap();
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.attach(&mut vm, pid).unwrap();

    // Overrun: the partition OOMs (the guest OOM killer would now fire).
    let r = vm.touch_anon(&mut host, pid, 256 * MIB / PAGE_SIZE + 1, &cost);
    assert!(matches!(r, Err(VmmError::Guest(MmError::OutOfMemory))));

    // Kill + detach + unplug: still zero migrations.
    vm.guest.exit_process(pid).unwrap();
    sq.detach(pid).unwrap();
    let (_, report) = sq.unplug_partition(&mut vm, &mut host, &cost).unwrap();
    assert_eq!(report.outcome.migrated, 0);

    // The partition plugs again for the next instance.
    let (id, _) = sq.plug_partition(&mut vm, &cost).unwrap();
    let pid2 = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    assert_eq!(
        sq.attach(&mut vm, pid2).unwrap(),
        AttachOutcome::Attached(id)
    );
    vm.touch_anon(&mut host, pid2, 1000, &cost).unwrap();
    vm.guest.assert_consistent();
}

/// Waitqueue stress: attach requests beyond populated capacity park in
/// FIFO order and wake exactly as plugs (or frees) provide partitions.
#[test]
fn waitqueue_wakes_fifo_under_stress() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(2 * GIB), &mut host).unwrap();
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 128 * MIB,
            shared_bytes: 0,
            concurrency: 8,
        },
        &cost,
    )
    .unwrap();

    // Eight requests race ahead of any plug.
    let pids: Vec<_> = (0..8)
        .map(|_| vm.guest.spawn_process(AllocPolicy::MovableDefault))
        .collect();
    for &pid in &pids {
        assert_eq!(sq.attach(&mut vm, pid).unwrap(), AttachOutcome::Queued);
    }
    assert_eq!(sq.waitqueue_len(), 8);
    assert_eq!(sq.stats().queued_attaches, 8);

    // Three plugs wake the first three waiters, in order.
    for _ in 0..3 {
        sq.plug_partition(&mut vm, &cost).unwrap();
    }
    let woken = sq.wake_waiters(&mut vm);
    let woken_pids: Vec<_> = woken.iter().map(|&(p, _)| p).collect();
    assert_eq!(woken_pids, pids[..3].to_vec(), "FIFO order");
    assert_eq!(sq.waitqueue_len(), 5);

    // A freed partition (exit + detach) serves the next waiter.
    vm.guest.exit_process(pids[0]).unwrap();
    sq.detach(pids[0]).unwrap();
    let woken = sq.wake_waiters(&mut vm);
    assert_eq!(woken.len(), 1);
    assert_eq!(woken[0].0, pids[3]);

    // Remaining waiters wake as the rest of the partitions plug.
    for _ in 0..4 {
        sq.plug_partition(&mut vm, &cost).unwrap();
    }
    assert_eq!(sq.wake_waiters(&mut vm).len(), 4);
    assert_eq!(sq.waitqueue_len(), 0);
}

/// Soft revocation of a fork family drops every member's pages.
#[test]
fn revoke_soft_covers_fork_children() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(2 * GIB), &mut host).unwrap();
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 256 * MIB,
            shared_bytes: 0,
            concurrency: 2,
        },
        &cost,
    )
    .unwrap();
    sq.plug_partition(&mut vm, &cost).unwrap();
    let parent = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.attach(&mut vm, parent).unwrap();
    let child = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.fork_attach(&mut vm, parent, child).unwrap();
    vm.touch_anon(&mut host, parent, 2000, &cost).unwrap();
    vm.touch_anon(&mut host, child, 3000, &cost).unwrap();

    // Parent marks the family's partition soft; pressure revokes it.
    sq.mark_soft(parent).unwrap();
    sq.revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
        .unwrap();
    assert_eq!(vm.guest.process(parent).unwrap().rss_pages(), 0);
    assert_eq!(vm.guest.process(child).unwrap().rss_pages(), 0);
    vm.guest.assert_consistent();

    // Both survive; the family replugs through either member.
    sq.replug(&mut vm, child, &cost).unwrap();
    vm.touch_anon(&mut host, parent, 100, &cost).unwrap();
    vm.touch_anon(&mut host, child, 100, &cost).unwrap();
}

/// Double operations fail cleanly without corrupting state.
#[test]
fn double_operations_rejected_cleanly() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(2 * GIB), &mut host).unwrap();
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 256 * MIB,
            shared_bytes: 0,
            concurrency: 1,
        },
        &cost,
    )
    .unwrap();
    sq.plug_partition(&mut vm, &cost).unwrap();
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.attach(&mut vm, pid).unwrap();
    sq.mark_soft(pid).unwrap();
    sq.revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
        .unwrap();

    // Double revoke: nothing soft left.
    let again = sq
        .revoke_soft(&mut vm, &mut host, usize::MAX, &cost)
        .unwrap();
    assert!(again.is_empty());
    // Replug twice: the second is rejected.
    sq.replug(&mut vm, pid, &cost).unwrap();
    assert!(matches!(
        sq.replug(&mut vm, pid, &cost),
        Err(SqueezyError::PartitionBusy)
    ));
    // Unplugging with everything assigned: nothing reclaimable.
    assert!(matches!(
        sq.unplug_partition(&mut vm, &mut host, &cost),
        Err(SqueezyError::NoReclaimablePartition)
    ));
    vm.guest.assert_consistent();
}

/// Balloon inflation into an almost-full guest stops at exhaustion
/// instead of deadlocking or corrupting the buddy.
#[test]
fn balloon_stops_at_guest_exhaustion() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = Vm::boot(vm_config(GIB), &mut host).unwrap();
    vm.plug(GIB, &cost).unwrap();
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let free = vm.guest.free_bytes();
    vm.touch_anon(&mut host, pid, (free - 64 * MIB) / PAGE_SIZE, &cost)
        .unwrap();

    // Ask the balloon for 4x what is left.
    let report = vm.balloon_reclaim(&mut host, 256 * MIB, &cost).unwrap();
    assert!(
        report.bytes() <= 64 * MIB,
        "inflation capped by free memory"
    );
    vm.guest.assert_consistent();
    assert_eq!(host.used_bytes(), vm.host_rss());
}
