//! Property-based tests over the extension subsystems: transparent huge
//! pages, swap, flex partitions, soft memory, temporal segregation and
//! the experiment engine's RNG stream derivation.

use guest_mm::{AllocPolicy, GuestMm, GuestMmConfig, PageState, PAGES_PER_HUGE};
use mem_types::{BlockId, Gfn, GIB, MIB, PAGE_SIZE};
use proptest::prelude::*;
use sim_core::experiment::{run_experiment, Experiment, TrialCtx};
use sim_core::DetRng;
use squeezy::{FlexManager, PartitionId, SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};

fn small_mm() -> GuestMm {
    GuestMm::new(GuestMmConfig {
        boot_bytes: 256 * MIB,
        hotplug_bytes: 256 * MIB,
        kernel_bytes: 32 * MIB,
        init_on_alloc: true,
    })
}

fn small_vm(host: &mut HostMemory) -> Vm {
    Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 256 * MIB,
                hotplug_bytes: 2 * GIB,
                kernel_bytes: 32 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        host,
    )
    .expect("host fits")
}

/// Operations mixing base pages, huge pages and swap.
#[derive(Clone, Debug)]
enum HugeOp {
    Fault { proc_idx: u8, pages: u16 },
    FaultHuge { proc_idx: u8, n: u8 },
    Free { proc_idx: u8, pages: u16 },
    FreeHuge { proc_idx: u8, n: u8 },
    SwapOut { proc_idx: u8, pages: u16 },
    SwapIn { proc_idx: u8, pages: u16 },
    Exit { proc_idx: u8 },
    Offline { block: u8 },
    Online { block: u8 },
}

fn huge_op() -> impl Strategy<Value = HugeOp> {
    prop_oneof![
        (0u8..3, 1u16..600).prop_map(|(p, n)| HugeOp::Fault {
            proc_idx: p,
            pages: n
        }),
        (0u8..3, 1u8..4).prop_map(|(p, n)| HugeOp::FaultHuge { proc_idx: p, n }),
        (0u8..3, 1u16..600).prop_map(|(p, n)| HugeOp::Free {
            proc_idx: p,
            pages: n
        }),
        (0u8..3, 1u8..4).prop_map(|(p, n)| HugeOp::FreeHuge { proc_idx: p, n }),
        (0u8..3, 1u16..400).prop_map(|(p, n)| HugeOp::SwapOut {
            proc_idx: p,
            pages: n
        }),
        (0u8..3, 1u16..400).prop_map(|(p, n)| HugeOp::SwapIn {
            proc_idx: p,
            pages: n
        }),
        (0u8..3).prop_map(|p| HugeOp::Exit { proc_idx: p }),
        (0u8..2).prop_map(|b| HugeOp::Offline { block: b }),
        (0u8..2).prop_map(|b| HugeOp::Online { block: b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of base faults, huge faults, frees, swap
    /// in/out, exits and block hot(un)plug keep every invariant: buddy
    /// integrity, block counters, huge-page structure (512-aligned heads
    /// with exactly 511 tails), owner back-references and conservation.
    #[test]
    fn huge_and_swap_ops_preserve_invariants(ops in prop::collection::vec(huge_op(), 1..50)) {
        let mut mm = small_mm();
        let boot_blocks = 2u64;
        let mut pids = vec![
            mm.spawn_process(AllocPolicy::MovableDefault),
            mm.spawn_process(AllocPolicy::MovableDefault),
            mm.spawn_process(AllocPolicy::MovableDefault),
        ];
        for op in ops {
            match op {
                HugeOp::Fault { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.fault_anon(pid, pages as u64);
                }
                HugeOp::FaultHuge { proc_idx, n } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.fault_anon_huge(pid, n as u64);
                }
                HugeOp::Free { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.free_anon(pid, pages as u64);
                }
                HugeOp::FreeHuge { proc_idx, n } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.free_anon_huge(pid, n as u64);
                }
                HugeOp::SwapOut { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.swap_out_anon(pid, pages as u64);
                }
                HugeOp::SwapIn { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.swap_in_anon(pid, pages as u64);
                }
                HugeOp::Exit { proc_idx } => {
                    let idx = proc_idx as usize % pids.len();
                    let _ = mm.exit_process(pids[idx]);
                    pids[idx] = mm.spawn_process(AllocPolicy::MovableDefault);
                }
                HugeOp::Offline { block } => {
                    let _ = mm.offline_block(BlockId(boot_blocks + block as u64));
                }
                HugeOp::Online { block } => {
                    let b = BlockId(boot_blocks + block as u64);
                    let _ = mm.hot_add_block(b);
                    let _ = mm.online_block(b, guest_mm::ZONE_MOVABLE);
                }
            }
            mm.assert_consistent();
        }
        prop_assert_eq!(mm.present_bytes(), mm.free_bytes() + mm.used_bytes());
        // Every process's rss is consistent with its swapped count:
        // swapped pages are not resident.
        for pid in pids {
            if let Some(p) = mm.process(pid) {
                prop_assert_eq!(
                    p.rss_pages(),
                    p.pages.len() as u64 + p.huge_pages.len() as u64 * PAGES_PER_HUGE
                );
            }
        }
    }

    /// Splitting a huge page (forced by offline with a fragmented
    /// fallback) conserves the owner's resident set exactly.
    #[test]
    fn huge_split_conserves_rss(n_huge in 1u64..4) {
        let mut mm = small_mm();
        let b = BlockId(2);
        mm.hot_add_block(b).unwrap();
        mm.online_block(b, guest_mm::ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::PinnedZone(guest_mm::ZONE_MOVABLE));
        mm.fault_anon_huge(pid, n_huge).unwrap();
        let rss0 = mm.process(pid).unwrap().rss_pages();

        // Fragment ZONE_NORMAL so no order-9 targets exist.
        let frag = mm.spawn_process(AllocPolicy::PinnedZone(guest_mm::ZONE_NORMAL));
        let free = mm.zone(guest_mm::ZONE_NORMAL).free_pages;
        mm.fault_anon(frag, free).unwrap();
        let held: Vec<_> = mm.process(frag).unwrap().pages.clone();
        for g in held.iter().filter(|g| g.0 % 2 == 0) {
            mm.free_anon_page(frag, *g).unwrap();
        }

        let out = mm.offline_block(b).unwrap();
        prop_assert_eq!(out.huge_splits, n_huge);
        prop_assert_eq!(mm.process(pid).unwrap().rss_pages(), rss0);
        prop_assert_eq!(mm.process(pid).unwrap().rss_huge(), 0);
        mm.assert_consistent();
    }

    /// The flex span allocator never loses or duplicates blocks: after
    /// any create/destroy sequence, destroying the survivors restores
    /// the full region as one span.
    #[test]
    fn flex_spans_conserve_region(
        sizes in prop::collection::vec(1u64..8, 1..10),
        destroy_order in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        let cost = sim_core::CostModel::default();
        let mut host = HostMemory::new(8 * GIB);
        let mut vm = small_vm(&mut host);
        let mut flex = FlexManager::install(&mut vm);
        let total = flex.largest_free_blocks();

        let mut live: Vec<PartitionId> = Vec::new();
        for blocks in &sizes {
            if let Ok((id, _)) =
                flex.create(&mut vm, blocks * mem_types::MEM_BLOCK_SIZE, 0, &cost)
            {
                live.push(id);
            }
        }
        // Destroy some in arbitrary order.
        for d in destroy_order {
            if live.is_empty() {
                break;
            }
            let idx = d as usize % live.len();
            let id = live.swap_remove(idx);
            flex.destroy(&mut vm, &mut host, id, &cost).unwrap();
        }
        // Destroy the rest.
        for id in live {
            flex.destroy(&mut vm, &mut host, id, &cost).unwrap();
        }
        prop_assert_eq!(flex.largest_free_blocks(), total);
        prop_assert_eq!(flex.partition_count(), 0);
        vm.guest.assert_consistent();
    }

    /// Host accounting stays exact through random soft mark / revoke /
    /// replug / exit interleavings: `host.used == Σ vm.host_rss()`.
    #[test]
    fn soft_lifecycle_keeps_host_accounting_exact(
        script in prop::collection::vec((0u8..4, 0u8..3), 1..25),
    ) {
        let cost = sim_core::CostModel::default();
        let mut host = HostMemory::new(16 * GIB);
        let mut vm = small_vm(&mut host);
        let mut sq = SqueezyManager::install(
            &mut vm,
            SqueezyConfig {
                partition_bytes: 256 * MIB,
                shared_bytes: 0,
                concurrency: 3,
            },
            &cost,
        )
        .unwrap();
        // Three instances, all warm.
        let mut pids = Vec::new();
        for _ in 0..3 {
            sq.plug_partition(&mut vm, &cost).unwrap();
            let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
            sq.attach(&mut vm, pid).unwrap();
            vm.touch_anon(&mut host, pid, 5_000, &cost).unwrap();
            pids.push(pid);
        }
        for (action, who) in script {
            let pid = pids[who as usize % pids.len()];
            match action {
                0 => {
                    let _ = sq.mark_soft(pid);
                }
                1 => {
                    let _ = sq.revoke_soft(&mut vm, &mut host, 1, &cost);
                }
                2 => {
                    if sq.mark_firm(pid) == Ok(squeezy::SoftWake::NeedsReplug) {
                        sq.replug(&mut vm, pid, &cost).unwrap();
                        vm.touch_anon(&mut host, pid, 5_000, &cost).unwrap();
                    }
                }
                _ => {
                    // Touch some memory if the partition is populated.
                    let _ = vm.touch_anon(&mut host, pid, 100, &cost);
                }
            }
            prop_assert_eq!(host.used_bytes(), vm.host_rss());
            vm.guest.assert_consistent();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Free page reporting invariants under random guest activity:
    /// every reported chunk is genuinely free and aligned, reported
    /// bytes never exceed free bytes, and with a backing-aware
    /// predicate the worker converges (the cycle after a quiet period
    /// reports nothing).
    #[test]
    fn free_page_reporting_sound_and_convergent(
        script in prop::collection::vec((0u8..3, 1u16..2000), 1..20),
    ) {
        let cost = sim_core::CostModel::default();
        let mut mm = small_mm();
        let mut fpr = balloon::FreePageReporter::new(balloon::DEFAULT_REPORT_ORDER);
        // Mini-EPT: frames with host backing.
        let mut backed: std::collections::HashSet<u64> =
            (0..mm.memmap().len()).collect();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        for (op, n) in script {
            match op {
                0 => {
                    if let Ok(got) = mm.fault_anon(pid, n as u64) {
                        for g in got {
                            backed.insert(g.0);
                        }
                    }
                }
                1 => {
                    let _ = mm.free_anon(pid, n as u64);
                }
                _ => {
                    let cycle = fpr.cycle(
                        &mm,
                        |g, o| (g.0..g.0 + (1 << o)).any(|f| backed.contains(&f)),
                        &cost,
                    );
                    for &(g, o) in &cycle.chunks {
                        // Soundness: aligned, free, within memory.
                        prop_assert_eq!(g.0 % (1 << o), 0, "misaligned report");
                        for f in g.0..g.0 + (1 << o) {
                            prop_assert!(
                                mm.memmap().state(Gfn(f)).is_free(),
                                "reported a non-free page"
                            );
                            backed.remove(&f);
                        }
                    }
                    prop_assert!(cycle.bytes() <= mm.free_bytes());
                }
            }
        }
        // Convergence: two quiet cycles in a row — the second is idle.
        let c1 = fpr.cycle(
            &mm,
            |g, o| (g.0..g.0 + (1 << o)).any(|f| backed.contains(&f)),
            &cost,
        );
        for &(g, o) in &c1.chunks {
            for f in g.0..g.0 + (1 << o) {
                backed.remove(&f);
            }
        }
        let c2 = fpr.cycle(
            &mm,
            |g, o| (g.0..g.0 + (1 << o)).any(|f| backed.contains(&f)),
            &cost,
        );
        prop_assert_eq!(c2.chunks.len(), 0, "worker failed to converge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `DetRng::derive` stream independence: child streams are a pure
    /// function of `(parent seed, tag)` — different tags give different
    /// streams, different parent seeds give different streams under the
    /// same tag (the seed-blind derivation bug the experiment engine
    /// would amplify across every trial), and consuming parent draws
    /// never perturbs a child.
    #[test]
    fn derive_streams_are_independent(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        tag_a in any::<u64>(),
        tag_b in any::<u64>(),
        burn in 0usize..64,
    ) {
        let draws = |rng: &mut DetRng| -> Vec<u64> {
            (0..24).map(|_| rng.range(0, u64::MAX)).collect()
        };

        // Determinism: the same (seed, tag) always gives the same stream.
        prop_assert_eq!(
            draws(&mut DetRng::new(seed_a).derive(tag_a)),
            draws(&mut DetRng::new(seed_a).derive(tag_a))
        );

        // Tag independence under one parent.
        if tag_a != tag_b {
            prop_assert_ne!(
                draws(&mut DetRng::new(seed_a).derive(tag_a)),
                draws(&mut DetRng::new(seed_a).derive(tag_b))
            );
        }

        // Seed independence under one tag.
        if seed_a != seed_b {
            prop_assert_ne!(
                draws(&mut DetRng::new(seed_a).derive(tag_a)),
                draws(&mut DetRng::new(seed_b).derive(tag_a))
            );
        }

        // Deriving is stateless: parent draws do not shift the child.
        let mut parent = DetRng::new(seed_a);
        let before = draws(&mut parent.derive(tag_a));
        for _ in 0..burn {
            parent.unit();
        }
        prop_assert_eq!(before, draws(&mut parent.derive(tag_a)));

        // Child streams differ from their parent's own draw sequence.
        prop_assert_ne!(
            draws(&mut DetRng::new(seed_a)),
            draws(&mut DetRng::new(seed_a).derive(tag_a))
        );
    }
}

/// A toy stochastic experiment for the engine's bit-identity contract:
/// every cell mixes heavy RNG consumption with per-cell state, so any
/// cross-thread leakage or order dependence would change its output.
struct ShuffleSum {
    points: u64,
    trials: u32,
    seed: u64,
}

impl Experiment for ShuffleSum {
    type Point = u64;
    type Output = (u64, Vec<u64>);

    fn points(&self) -> Vec<u64> {
        (0..self.points).collect()
    }

    fn trials(&self) -> u32 {
        self.trials
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run_trial(&self, &p: &u64, ctx: &mut TrialCtx) -> (u64, Vec<u64>) {
        let mut xs: Vec<u64> = (0..256).map(|i| i * (p + 1) + ctx.trial).collect();
        ctx.rng.shuffle(&mut xs);
        let checksum = xs.iter().enumerate().fold(0u64, |acc, (i, &x)| {
            acc.wrapping_mul(31).wrapping_add(x ^ i as u64)
        });
        (checksum, xs.into_iter().take(8).collect())
    }
}

/// Engine bit-identity: for any grid shape, seed and worker count, the
/// parallel runner reproduces the serial path exactly — the tentpole
/// guarantee that lets `repro --jobs N` keep byte-identical tables.
#[test]
fn experiment_engine_parallel_is_bit_identical_to_serial() {
    for (points, trials, seed) in [(1, 1, 0), (3, 4, 42), (7, 2, 0xDEAD), (16, 3, 9)] {
        let exp = ShuffleSum {
            points,
            trials,
            seed,
        };
        let serial = run_experiment(&exp, 1);
        for jobs in [2, 3, 5, 32] {
            assert_eq!(
                serial,
                run_experiment(&exp, jobs),
                "grid ({points}x{trials}, seed {seed}) diverged at jobs={jobs}"
            );
        }
    }
}

/// Deterministic regression: a huge page allocated, swapped around and
/// split never corrupts neighbouring owners' pages.
#[test]
fn huge_neighbours_unaffected_by_split() {
    let mut mm = small_mm();
    let b = BlockId(2);
    mm.hot_add_block(b).unwrap();
    mm.online_block(b, guest_mm::ZONE_MOVABLE).unwrap();
    let a = mm.spawn_process(AllocPolicy::PinnedZone(guest_mm::ZONE_MOVABLE));
    let h = mm.spawn_process(AllocPolicy::PinnedZone(guest_mm::ZONE_MOVABLE));
    mm.fault_anon(a, 300).unwrap();
    mm.fault_anon_huge(h, 2).unwrap();
    mm.fault_anon(a, 300).unwrap();
    let a_pages: Vec<_> = mm.process(a).unwrap().pages.clone();

    // Fragment the fallback so the offline splits h's huge pages.
    let frag = mm.spawn_process(AllocPolicy::PinnedZone(guest_mm::ZONE_NORMAL));
    let free = mm.zone(guest_mm::ZONE_NORMAL).free_pages;
    mm.fault_anon(frag, free - 700).unwrap();
    let held: Vec<_> = mm.process(frag).unwrap().pages.clone();
    for g in held.iter().filter(|g| g.0 % 2 == 0) {
        mm.free_anon_page(frag, *g).unwrap();
    }

    mm.offline_block(b).unwrap();
    // Process a still owns 600 pages, all Anon, slots intact.
    let a_proc = mm.process(a).unwrap();
    assert_eq!(a_proc.rss_pages(), 600);
    for (slot, &g) in a_proc.pages.iter().enumerate() {
        let d = mm.memmap().page(g);
        assert_eq!(d.state, PageState::Anon);
        assert_eq!(d.a, a.0);
        assert_eq!(d.b as usize, slot);
    }
    // h's huge pages became base pages with the same total size.
    assert_eq!(mm.process(h).unwrap().rss_pages(), 2 * PAGES_PER_HUGE);
    drop(a_pages);
    mm.assert_consistent();
}

/// Deterministic regression: swapping out everything and exiting does
/// not double-free.
#[test]
fn swap_then_exit_is_clean() {
    let mut mm = small_mm();
    let pid = mm.spawn_process(AllocPolicy::MovableDefault);
    mm.fault_anon(pid, 1000).unwrap();
    mm.swap_out_anon(pid, 600).unwrap();
    let freed = mm.exit_process(pid).unwrap();
    assert_eq!(freed, 400, "only resident pages freed on exit");
    assert_eq!(mm.present_bytes(), mm.free_bytes() + mm.used_bytes());
    mm.assert_consistent();
}

/// Deterministic regression: a flex partition graveyard (create/destroy
/// loop) keeps working after 100 cycles without exhausting zones.
#[test]
fn flex_churn_hundred_cycles() {
    let cost = sim_core::CostModel::default();
    let mut host = HostMemory::new(8 * GIB);
    let mut vm = small_vm(&mut host);
    let mut flex = FlexManager::install(&mut vm);
    for i in 0..100 {
        let (id, _) = flex
            .create(&mut vm, 256 * MIB, 128 * MIB, &cost)
            .unwrap_or_else(|e| panic!("cycle {i}: {e}"));
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        flex.attach(&mut vm, id, pid).unwrap();
        vm.touch_anon(&mut host, pid, 1000, &cost).unwrap();
        vm.guest.exit_process(pid).unwrap();
        flex.detach(pid).unwrap();
        flex.destroy(&mut vm, &mut host, id, &cost).unwrap();
    }
    assert_eq!(host.used_bytes(), vm.host_rss());
    assert_eq!(vm.host_rss(), 32 * MIB, "only the kernel stays resident");
    assert_eq!(flex.stats().creates, 100);
    assert_eq!(flex.stats().destroys, 100);
}

/// Deterministic regression: PAGE_SIZE-scale accounting across the
/// whole stack after a busy mixed workload.
#[test]
fn mixed_workload_exact_accounting() {
    let cost = sim_core::CostModel::default();
    let mut host = HostMemory::new(16 * GIB);
    let mut vm = small_vm(&mut host);
    vm.plug(GIB, &cost).unwrap();
    let mut dev = swap::SwapDevice::new(swap::SwapBackend::Compressed { retain_ratio: 0.5 });
    let a = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let b = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    vm.touch_anon(&mut host, a, 20_000, &cost).unwrap();
    vm.touch_anon_huge(&mut host, b, 16, &cost).unwrap();
    dev.swap_out(&mut vm, &mut host, a, 10_000, &cost).unwrap();
    dev.swap_in(&mut vm, &mut host, a, 5_000, &cost).unwrap();
    vm.guest.free_anon_huge(b, 8).unwrap();
    // Exact: host usage = VM rss + compressed pool.
    assert_eq!(host.used_bytes(), vm.host_rss() + dev.pool_bytes());
    assert_eq!(
        vm.guest.process(a).unwrap().rss_pages() + vm.guest.process(a).unwrap().swapped,
        20_000
    );
    assert_eq!(vm.guest.process(b).unwrap().rss_pages(), 8 * PAGES_PER_HUGE);
    let _ = PAGE_SIZE;
    vm.guest.assert_consistent();
}
