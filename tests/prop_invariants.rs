//! Property-based tests over the core data-structure invariants.

use guest_mm::{AllocPolicy, GuestMm, GuestMmConfig, PageState};
use mem_types::{Bitmap, BlockId, FrameRange, Gfn, MIB, PAGES_PER_BLOCK};
use proptest::prelude::*;
use sim_core::CpuPool;

fn small_mm() -> GuestMm {
    GuestMm::new(GuestMmConfig {
        boot_bytes: 256 * MIB,
        hotplug_bytes: 256 * MIB,
        kernel_bytes: 32 * MIB,
        init_on_alloc: true,
    })
}

/// Operations a random workload may apply to the memory manager.
#[derive(Clone, Debug)]
enum MmOp {
    Fault { proc_idx: u8, pages: u16 },
    Free { proc_idx: u8, pages: u16 },
    Exit { proc_idx: u8 },
    FileFault { file: u8, pages: u16 },
    Online { block: u8 },
    Offline { block: u8 },
}

fn op_strategy() -> impl Strategy<Value = MmOp> {
    prop_oneof![
        (0u8..4, 1u16..512).prop_map(|(p, n)| MmOp::Fault {
            proc_idx: p,
            pages: n
        }),
        (0u8..4, 1u16..512).prop_map(|(p, n)| MmOp::Free {
            proc_idx: p,
            pages: n
        }),
        (0u8..4).prop_map(|p| MmOp::Exit { proc_idx: p }),
        (0u8..3, 1u16..256).prop_map(|(f, n)| MmOp::FileFault { file: f, pages: n }),
        (0u8..2).prop_map(|b| MmOp::Online { block: b }),
        (0u8..2).prop_map(|b| MmOp::Offline { block: b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of faults, frees, exits, file faults and block
    /// hot(un)plug operations leaves the buddy free lists, page states
    /// and block counters mutually consistent, and conserves pages.
    #[test]
    fn guest_mm_invariants_hold_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut mm = small_mm();
        let boot_blocks = 2u64;
        let mut pids = [mm.spawn_process(AllocPolicy::MovableDefault),
            mm.spawn_process(AllocPolicy::MovableDefault),
            mm.spawn_process(AllocPolicy::MovableDefault),
            mm.spawn_process(AllocPolicy::MovableDefault)];
        for op in ops {
            match op {
                MmOp::Fault { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.fault_anon(pid, pages as u64);
                }
                MmOp::Free { proc_idx, pages } => {
                    let pid = pids[proc_idx as usize % pids.len()];
                    let _ = mm.free_anon(pid, pages as u64);
                }
                MmOp::Exit { proc_idx } => {
                    let idx = proc_idx as usize % pids.len();
                    let _ = mm.exit_process(pids[idx]);
                    // Respawn so later ops have a target.
                    pids[idx] = mm.spawn_process(AllocPolicy::MovableDefault);
                }
                MmOp::FileFault { file, pages } => {
                    let _ = mm.fault_file(guest_mm::FileId(file as u32), pages as u64);
                }
                MmOp::Online { block } => {
                    let b = BlockId(boot_blocks + block as u64);
                    let _ = mm.hot_add_block(b);
                    let _ = mm.online_block(b, guest_mm::ZONE_MOVABLE);
                }
                MmOp::Offline { block } => {
                    let b = BlockId(boot_blocks + block as u64);
                    let _ = mm.offline_block(b);
                }
            }
            mm.assert_consistent();
        }
        // Conservation: present = free + used everywhere.
        prop_assert_eq!(
            mm.present_bytes(),
            mm.free_bytes() + mm.used_bytes()
        );
    }

    /// Offlining then re-onlining a block is lossless: every process
    /// keeps its full resident set, and the zone sizes return.
    #[test]
    fn offline_online_roundtrip_preserves_memory(pages in 1u64..2048) {
        let mut mm = small_mm();
        let b1 = BlockId(2);
        let b2 = BlockId(3);
        mm.hot_add_block(b1).unwrap();
        mm.online_block(b1, guest_mm::ZONE_MOVABLE).unwrap();
        mm.hot_add_block(b2).unwrap();
        mm.online_block(b2, guest_mm::ZONE_MOVABLE).unwrap();
        let pid = mm.spawn_process(AllocPolicy::MovableDefault);
        mm.fault_anon(pid, pages).unwrap();
        let present0 = mm.present_bytes();

        let out = mm.offline_block(b1).unwrap();
        prop_assert_eq!(out.scanned, PAGES_PER_BLOCK);
        prop_assert_eq!(mm.process(pid).unwrap().rss_pages(), pages);
        mm.hot_remove_block(b1).unwrap();
        mm.hot_add_block(b1).unwrap();
        mm.online_block(b1, guest_mm::ZONE_MOVABLE).unwrap();
        prop_assert_eq!(mm.present_bytes(), present0);
        mm.assert_consistent();
    }

    /// The CPU pool conserves work: what tasks consume equals capacity ×
    /// time when oversubscribed, and rates never exceed caps.
    #[test]
    fn cpu_pool_conserves_work(
        demands in prop::collection::vec(0.05f64..2.0, 2..10),
        caps in prop::collection::vec(0.25f64..1.0, 2..10),
    ) {
        let n = demands.len().min(caps.len());
        let mut pool = CpuPool::new(2.0);
        let ids: Vec<_> = (0..n)
            .map(|i| pool.add_task(demands[i], caps[i], 1.0))
            .collect();
        for &id in &ids {
            let rate = pool.rate_of(id).unwrap();
            prop_assert!(rate <= caps[ids.iter().position(|&x| x == id).unwrap()] + 1e-9);
        }
        prop_assert!(pool.total_rate() <= 2.0 + 1e-9);
        // Run to completion.
        let mut guard = 0;
        while let Some((_, t)) = pool.next_completion() {
            pool.advance_to(t);
            let finished: Vec<_> = ids
                .iter()
                .filter(|&&id| pool.remaining(id).map(|r| r <= 1e-9).unwrap_or(false))
                .copied()
                .collect();
            for id in finished {
                pool.remove(id);
            }
            guard += 1;
            prop_assert!(guard < 1000, "pool failed to drain");
        }
        let total: f64 = demands[..n].iter().sum();
        prop_assert!((pool.total_consumed() - total).abs() < 1e-6);
    }

    /// Bitmap set/clear operations agree with a model `Vec<bool>`.
    #[test]
    fn bitmap_matches_model(ops in prop::collection::vec((0usize..300, any::<bool>()), 1..100)) {
        let mut bm = Bitmap::new(300);
        let mut model = vec![false; 300];
        for (i, set) in ops {
            if set {
                bm.set(i);
                model[i] = true;
            } else {
                bm.clear(i);
                model[i] = false;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..300 {
            prop_assert_eq!(bm.get(i), model[i]);
        }
        prop_assert_eq!(bm.count_ones(), model.iter().filter(|&&b| b).count());
        prop_assert_eq!(bm.first_zero(), model.iter().position(|&b| !b));
    }

    /// Frame ranges: intersection is symmetric and contained in both.
    #[test]
    fn frame_range_intersection(a in 0u64..1000, alen in 1u64..500, b in 0u64..1000, blen in 1u64..500) {
        let ra = FrameRange::new(Gfn(a), alen);
        let rb = FrameRange::new(Gfn(b), blen);
        let i1 = ra.intersect(&rb);
        let i2 = rb.intersect(&ra);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(ra.contains(i.start) && rb.contains(i.start));
            let last = Gfn(i.end().0 - 1);
            prop_assert!(ra.contains(last) && rb.contains(last));
            prop_assert!(ra.overlaps(&rb));
        } else {
            prop_assert!(!ra.overlaps(&rb));
        }
    }
}

/// Page-state transitions never corrupt the memmap even at exhaustion.
#[test]
fn exhaustion_roundtrip() {
    let mut mm = small_mm();
    let pid = mm.spawn_process(AllocPolicy::MovableDefault);
    let free = mm.free_bytes() / mem_types::PAGE_SIZE;
    assert!(mm.fault_anon(pid, free + 1).is_err());
    assert_eq!(mm.free_bytes(), 0);
    mm.assert_consistent();
    mm.exit_process(pid).unwrap();
    mm.assert_consistent();
    // Everything is free again and merged.
    let pid2 = mm.spawn_process(AllocPolicy::MovableDefault);
    assert!(mm.fault_anon(pid2, free).is_ok());
    mm.assert_consistent();
}

/// Squeezy's zones never contain another instance's pages.
#[test]
fn partition_isolation_exhaustive_check() {
    use squeezy::{SqueezyConfig, SqueezyManager};
    use vmm::{HostMemory, Vm, VmConfig};

    let cost = sim_core::CostModel::default();
    let mut host = HostMemory::new(16 * (1 << 30));
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 512 * MIB,
                hotplug_bytes: 2048 * MIB,
                kernel_bytes: 64 * MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )
    .unwrap();
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 512 * MIB,
            shared_bytes: 256 * MIB,
            concurrency: 3,
        },
        &cost,
    )
    .unwrap();

    let mut pids = Vec::new();
    for _ in 0..3 {
        sq.plug_partition(&mut vm, &cost).unwrap();
        let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
        sq.attach(&mut vm, pid).unwrap();
        vm.touch_anon(&mut host, pid, 5000, &cost).unwrap();
        pids.push(pid);
    }
    // Exhaustively verify: every anon page in a partition zone belongs
    // to the instance attached to that partition.
    for p in sq.partitions() {
        let Some((owner_idx, _)) = pids
            .iter()
            .enumerate()
            .find(|(_, &pid)| sq.partition_of(pid) == Some(p.id))
        else {
            continue;
        };
        let owner = pids[owner_idx];
        for blk in &p.blocks {
            for g in blk.frames().iter() {
                let d = vm.guest.memmap().page(g);
                if d.state == PageState::Anon {
                    assert_eq!(d.a, owner.0, "foreign page in partition {:?}", p.id);
                }
            }
        }
    }
}
