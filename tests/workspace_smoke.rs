//! Workspace wiring smoke test: every layer must be reachable through the
//! `squeezy_repro` façade, and a minimal end-to-end Squeezy round-trip
//! must work. If a manifest edge or a façade re-export goes missing, this
//! fails at compile time rather than deep inside an integration suite.

use squeezy_repro::{
    balloon, faas, guest_mm, mem_types, sim_core, squeezy, squeezy_bench, swap, virtio_mem, vmm,
    workloads,
};

/// One cheap instantiation per re-exported layer.
#[test]
fn facade_reexports_resolve() {
    // mem-types: units and data structures.
    assert_eq!(mem_types::MIB, 1 << 20);
    let bm = mem_types::Bitmap::new(64);
    assert_eq!(bm.count_ones(), 0);

    // sim-core: cost model and deterministic RNG.
    let cost = sim_core::CostModel::default();
    let _ = &cost;
    let mut rng = sim_core::DetRng::new(1);
    assert!(rng.unit() < 1.0);

    // guest-mm: a bootable guest memory manager.
    let mm = guest_mm::GuestMm::new(guest_mm::GuestMmConfig {
        boot_bytes: 256 * mem_types::MIB,
        hotplug_bytes: 256 * mem_types::MIB,
        kernel_bytes: 32 * mem_types::MIB,
        init_on_alloc: true,
    });
    assert!(mm.free_bytes() > 0);

    // Devices and host side.
    let _order = balloon::DEFAULT_REPORT_ORDER;
    let _backend = swap::SwapBackend::Disk;
    let _stats = virtio_mem::VirtioMemStats::default();
    let host = vmm::HostMemory::new(mem_types::GIB);
    assert_eq!(host.used_bytes(), 0);

    // Workloads and the FaaS runtime model.
    assert!(!workloads::FunctionKind::ALL.is_empty());
    let _backend = faas::BackendKind::Squeezy;

    // Bench harness: Table 1 renders.
    assert!(squeezy_bench::table1::render().contains("Bert"));
}

/// A `SqueezyManager` attach/unplug round-trip through the façade:
/// plug a partition, run an instance in it, tear it down, and reclaim
/// the partition — host accounting must return to the post-boot state.
#[test]
fn squeezy_attach_unplug_round_trip() {
    use guest_mm::{AllocPolicy, GuestMmConfig};
    use squeezy::{SqueezyConfig, SqueezyManager};
    use vmm::{HostMemory, Vm, VmConfig};

    let cost = sim_core::CostModel::default();
    let mut host = HostMemory::new(16 * mem_types::GIB);
    let mut vm = Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: 512 * mem_types::MIB,
                hotplug_bytes: 2048 * mem_types::MIB,
                kernel_bytes: 64 * mem_types::MIB,
                init_on_alloc: true,
            },
            vcpus: 2.0,
        },
        &mut host,
    )
    .expect("host fits the boot footprint");
    let baseline_rss = vm.host_rss();

    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 256 * mem_types::MIB,
            shared_bytes: 128 * mem_types::MIB,
            concurrency: 2,
        },
        &cost,
    )
    .expect("squeezy installs");

    // Plug one partition and run an instance inside it.
    let (plugged_id, _report) = sq.plug_partition(&mut vm, &cost).expect("plug");
    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let outcome = sq.attach(&mut vm, pid).expect("attach");
    assert_eq!(sq.partition_of(pid), Some(plugged_id), "{outcome:?}");
    vm.touch_anon(&mut host, pid, 1000, &cost).expect("touch");
    assert!(vm.host_rss() > baseline_rss);

    // Instance exits; its partition becomes reclaimable and unplugs.
    vm.guest.exit_process(pid).expect("exit");
    sq.detach(pid).expect("detach");
    let (unplugged_id, report) = sq
        .unplug_partition(&mut vm, &mut host, &cost)
        .expect("unplug");
    assert_eq!(unplugged_id, plugged_id);
    assert!(report.bytes() >= 256 * mem_types::MIB);

    // Host accounting is exact: everything the instance used came back.
    assert_eq!(host.used_bytes(), vm.host_rss());
    assert_eq!(vm.host_rss(), baseline_rss);
    vm.guest.assert_consistent();
}
