//! Cross-crate integration tests: the paper's headline claims exercised
//! through the full stack (guest mm + devices + VMM + Squeezy + FaaS).

use faas::{BackendKind, Deployment, FaasSim, SimConfig};
use guest_mm::{AllocPolicy, GuestMmConfig};
use mem_types::{GIB, MIB, PAGES_PER_BLOCK};
use sim_core::CostModel;
use squeezy::{SqueezyConfig, SqueezyManager};
use vmm::{HostMemory, Vm, VmConfig};
use workloads::{FunctionKind, Memhog};

fn boot(hotplug_gib: u64, host: &mut HostMemory) -> Vm {
    Vm::boot(
        VmConfig {
            guest: GuestMmConfig {
                boot_bytes: GIB,
                hotplug_bytes: hotplug_gib * GIB,
                kernel_bytes: 192 * MIB,
                init_on_alloc: true,
            },
            vcpus: 4.0,
        },
        host,
    )
    .expect("host sized")
}

/// The core claim (§6.1.1): reclaiming a terminated instance's memory is
/// an order of magnitude faster with Squeezy than with vanilla
/// virtio-mem, because partitioning eliminates migrations and zeroing.
#[test]
fn headline_order_of_magnitude_speedup() {
    let cost = CostModel::default();

    // Vanilla: two interleaved memhogs, one dies, unplug its share.
    let mut host = HostMemory::new(64 * GIB);
    let mut vm = boot(4, &mut host);
    vm.plug(4 * GIB, &cost).expect("plug");
    let keep = Memhog::spawn(&mut vm, GIB);
    let die = Memhog::spawn(&mut vm, GIB);
    squeezy_bench::setup::fill_interleaved(&mut vm, &mut host, &[keep, die], &cost);
    die.kill(&mut vm).expect("alive");
    let vanilla = vm.unplug(&mut host, GIB, None, &cost).expect("unplug");
    assert!(
        vanilla.outcome.migrated > 0,
        "interleaving forces migrations"
    );

    // Squeezy: same workload, partitioned.
    let mut host2 = HostMemory::new(64 * GIB);
    let mut vm2 = boot(4, &mut host2);
    let mut sq = SqueezyManager::install(
        &mut vm2,
        SqueezyConfig {
            partition_bytes: GIB,
            shared_bytes: 0,
            concurrency: 3,
        },
        &cost,
    )
    .expect("fits");
    for _ in 0..2 {
        sq.plug_partition(&mut vm2, &cost).expect("partition");
    }
    let keep = Memhog::spawn(&mut vm2, GIB - 64 * MIB);
    let die = Memhog::spawn(&mut vm2, GIB - 64 * MIB);
    sq.attach(&mut vm2, keep.pid).expect("attach");
    sq.attach(&mut vm2, die.pid).expect("attach");
    keep.warm_up(&mut vm2, &mut host2, &cost).expect("fits");
    die.warm_up(&mut vm2, &mut host2, &cost).expect("fits");
    die.kill(&mut vm2).expect("alive");
    sq.detach(die.pid).expect("attached");
    let squeezy = sq
        .unplug_partition(&mut vm2, &mut host2, &cost)
        .expect("free partition")
        .1;
    assert_eq!(squeezy.outcome.migrated, 0);
    assert_eq!(squeezy.outcome.zeroed, 0);

    let speedup = vanilla.latency().as_nanos() as f64 / squeezy.latency().as_nanos() as f64;
    assert!(
        speedup > 5.0,
        "expected order-of-magnitude-ish speedup, got {speedup:.1}x"
    );
}

/// §6.1.1: virtio-mem beats ballooning because it reclaims in 128 MiB
/// blocks instead of pages.
#[test]
fn virtio_mem_beats_ballooning() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(64 * GIB);
    let mut vm = boot(2, &mut host);
    vm.plug(2 * GIB, &cost).expect("plug");
    let hog = Memhog::spawn(&mut vm, GIB);
    hog.warm_up(&mut vm, &mut host, &cost).expect("fits");
    hog.kill(&mut vm).expect("alive");

    let balloon = vm
        .balloon_reclaim(&mut host, GIB, &cost)
        .expect("free memory");
    vm.balloon.deflate(&mut vm.guest, GIB, &cost);
    let virtio = vm.unplug(&mut host, GIB, None, &cost).expect("unplug");
    assert!(
        balloon.latency() > virtio.latency(),
        "balloon {} should exceed virtio {}",
        balloon.latency(),
        virtio.latency()
    );
}

/// Guest frees are invisible to the host until reclamation (Figure 1):
/// the full stack keeps host accounting consistent through a lifecycle.
#[test]
fn host_accounting_consistent_through_lifecycle() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(64 * GIB);
    let mut vm = boot(2, &mut host);
    vm.plug(2 * GIB, &cost).expect("plug");

    let pid = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    vm.touch_anon(&mut host, pid, 4 * PAGES_PER_BLOCK, &cost)
        .expect("fits");
    let peak = host.used_bytes();
    assert_eq!(peak, vm.host_rss());

    // Guest-side free: host unchanged.
    vm.guest.exit_process(pid).expect("alive");
    assert_eq!(host.used_bytes(), peak);

    // Reclaim: host shrinks; guest and host agree.
    let report = vm
        .unplug(&mut host, 512 * MIB, None, &cost)
        .expect("unplug");
    assert_eq!(report.blocks.len(), 4);
    assert_eq!(host.used_bytes(), vm.host_rss());
    assert!(host.used_bytes() < peak);
    vm.guest.assert_consistent();
}

/// The FaaS runtime keeps every invariant across backends: every request
/// completes and the host never leaks memory.
#[test]
fn faas_runtime_serves_all_backends() {
    let arrivals: Vec<f64> = (0..30).map(|i| 1.0 + i as f64 * 2.0).collect();
    for backend in [
        BackendKind::Static,
        BackendKind::VirtioMem,
        BackendKind::HarvestOpts,
        BackendKind::Squeezy,
    ] {
        let cfg = SimConfig {
            keepalive_s: 15.0,
            ..SimConfig::single_vm(
                backend,
                Deployment {
                    kind: FunctionKind::Bfs,
                    concurrency: 4,
                    arrivals: arrivals.clone(),
                },
                120.0,
            )
        };
        let result = FaasSim::new(cfg).expect("boot").run();
        assert_eq!(result.completed, 30, "{backend:?} served everything");
    }
}

/// Squeezy's partition OOM containment holds through the whole stack: an
/// instance overrunning its limit dies without damaging its neighbours.
#[test]
fn oom_containment_under_full_stack() {
    let cost = CostModel::default();
    let mut host = HostMemory::new(64 * GIB);
    let mut vm = boot(4, &mut host);
    let mut sq = SqueezyManager::install(
        &mut vm,
        SqueezyConfig {
            partition_bytes: 512 * MIB,
            shared_bytes: 128 * MIB,
            concurrency: 4,
        },
        &cost,
    )
    .expect("fits");

    // Two instances; one overruns.
    sq.plug_partition(&mut vm, &cost).expect("p0");
    sq.plug_partition(&mut vm, &cost).expect("p1");
    let good = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    let bad = vm.guest.spawn_process(AllocPolicy::MovableDefault);
    sq.attach(&mut vm, good).expect("attach");
    sq.attach(&mut vm, bad).expect("attach");
    vm.touch_anon(&mut host, good, 1000, &cost).expect("fits");
    let r = vm.touch_anon(&mut host, bad, 600 * MIB / mem_types::PAGE_SIZE, &cost);
    assert!(r.is_err(), "overrun of the 512 MiB partition OOMs");
    // The neighbour is untouched and the guest stays consistent.
    assert_eq!(vm.guest.process(good).unwrap().rss_pages(), 1000);
    vm.guest
        .exit_process(bad)
        .expect("oom-killed process cleaned");
    sq.detach(bad).expect("detach");
    vm.guest.assert_consistent();
}

/// Cold starts on dynamically resized VMs pay the plug + nested-fault
/// tax the paper quantifies (§6.2.1: 3-35 % slower than a static VM).
#[test]
fn dynamic_resize_cold_start_tax_is_bounded() {
    let arrivals = vec![1.0];
    let mut results = Vec::new();
    for backend in [BackendKind::Static, BackendKind::Squeezy] {
        let cfg = SimConfig::single_vm(
            backend,
            Deployment {
                kind: FunctionKind::Cnn,
                concurrency: 2,
                arrivals: arrivals.clone(),
            },
            60.0,
        );
        let result = FaasSim::new(cfg).expect("boot").run();
        results.push(result.per_func[&FunctionKind::Cnn].latency_points[0].1);
    }
    let (static_ms, squeezy_ms) = (results[0], results[1]);
    let tax = squeezy_ms / static_ms - 1.0;
    assert!(
        (0.0..0.40).contains(&tax),
        "cold-start tax {:.1}% outside the paper's 3-35% band",
        tax * 100.0
    );
}
